#include "search/fault_stream.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace nocsched::search {

noc::FaultSet FaultStream::cumulative(std::size_t upto) const {
  ensure(upto <= events.size(), "FaultStream::cumulative: prefix ", upto, " of ",
         events.size(), " events");
  noc::FaultSet faults;
  for (std::size_t i = 0; i < upto; ++i) merge_faults(faults, events[i].increment);
  return faults;
}

void merge_faults(noc::FaultSet& faults, const noc::FaultSet& increment) {
  for (const noc::ChannelId c : increment.failed_channels()) faults.fail_channel(c);
  for (const noc::RouterId r : increment.failed_routers()) faults.fail_router(r);
  for (const int p : increment.failed_processors()) faults.fail_processor(p);
}

namespace {

/// Scanner over one JSONL line.  Every diagnostic is prefixed
/// "<name>:<line>: " so a malformed file is fixable from the message
/// alone.  The accepted grammar is deliberately small: one flat object
/// of known keys, unsigned integers, and escape-free strings.
class LineScanner {
 public:
  LineScanner(std::string_view text, std::string_view name, std::size_t line)
      : text_(text), name_(name), line_(line) {}

  template <typename... Parts>
  [[noreturn]] void die(Parts&&... parts) const {
    fail(name_, ":", line_, ": ", std::forward<Parts>(parts)...);
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) ++pos_;
  }

  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c, std::string_view where) {
    if (!eat(c)) die("expected '", c, "' ", where);
  }

  [[nodiscard]] std::string_view parse_string(std::string_view what) {
    expect('"', cat("to open ", what));
    const std::size_t begin = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') die("escape sequences are not supported in ", what);
      ++pos_;
    }
    if (pos_ == text_.size()) die("unterminated string in ", what);
    return text_.substr(begin, pos_++ - begin);
  }

  [[nodiscard]] std::uint64_t parse_uint(std::string_view what) {
    skip_ws();
    const std::size_t begin = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (pos_ == begin) {
      die("expected an unsigned integer for ", what, ", got '",
          text_.substr(begin, std::min<std::size_t>(text_.size() - begin, 12)), "'");
    }
    std::uint64_t v = 0;
    for (std::size_t i = begin; i < pos_; ++i) {
      const std::uint64_t digit = static_cast<std::uint64_t>(text_[i] - '0');
      if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
        die(what, " value '", text_.substr(begin, pos_ - begin), "' is out of range");
      }
      v = v * 10 + digit;
    }
    return v;
  }

  void expect_end() {
    skip_ws();
    if (pos_ != text_.size()) {
      die("trailing content '", text_.substr(pos_), "' after the event object");
    }
  }

 private:
  std::string_view text_;
  std::string_view name_;
  std::size_t line_;
  std::size_t pos_ = 0;
};

/// "FROM:TO" -> the directed channel between two adjacent routers.
noc::ChannelId parse_link(LineScanner& sc, std::string_view spec,
                          const core::SystemModel& sys) {
  const auto ends = split(spec, ':');
  if (ends.size() != 2) sc.die("links entries are FROM:TO router pairs, got '", spec, "'");
  noc::RouterId routers[2];
  for (int i = 0; i < 2; ++i) {
    std::uint64_t r = 0;
    for (const char c : ends[i]) {
      if (c < '0' || c > '9') sc.die("bad router id '", ends[i], "' in link '", spec, "'");
      r = r * 10 + static_cast<std::uint64_t>(c - '0');
      if (r > static_cast<std::uint64_t>(sys.mesh().router_count())) break;
    }
    if (ends[i].empty() || r >= static_cast<std::uint64_t>(sys.mesh().router_count())) {
      sc.die("no router '", ends[i], "' in link '", spec, "' (mesh has ",
             sys.mesh().router_count(), " routers)");
    }
    routers[i] = static_cast<noc::RouterId>(r);
  }
  if (sys.mesh().hop_count(routers[0], routers[1]) != 1) {
    sc.die("link '", spec, "': routers ", routers[0], " and ", routers[1],
           " are not adjacent");
  }
  return sys.mesh().channel_between(routers[0], routers[1]);
}

FaultEvent parse_event(std::string_view text, const core::SystemModel& sys,
                       std::string_view name, std::size_t line) {
  LineScanner sc(text, name, line);
  FaultEvent event;
  bool saw_cycle = false;
  sc.expect('{', "to open the event object");
  if (!sc.eat('}')) {
    do {
      const std::string_view key = sc.parse_string("a key");
      sc.expect(':', cat("after key \"", key, "\""));
      if (key == "cycle") {
        if (saw_cycle) sc.die("duplicate \"cycle\" key");
        saw_cycle = true;
        event.cycle = sc.parse_uint("\"cycle\"");
        if (event.cycle > kMaxEventCycle) {
          sc.die("\"cycle\" ", event.cycle, " exceeds the maximum ", kMaxEventCycle);
        }
      } else if (key == "links") {
        sc.expect('[', "to open \"links\"");
        if (!sc.eat(']')) {
          do {
            event.increment.fail_channel(parse_link(sc, sc.parse_string("a link"), sys));
          } while (sc.eat(','));
          sc.expect(']', "to close \"links\"");
        }
      } else if (key == "routers") {
        sc.expect('[', "to open \"routers\"");
        if (!sc.eat(']')) {
          do {
            const std::uint64_t r = sc.parse_uint("a router id");
            if (r >= static_cast<std::uint64_t>(sys.mesh().router_count())) {
              sc.die("no router ", r, " (mesh has ", sys.mesh().router_count(), " routers)");
            }
            event.increment.fail_router(static_cast<noc::RouterId>(r));
          } while (sc.eat(','));
          sc.expect(']', "to close \"routers\"");
        }
      } else if (key == "procs") {
        sc.expect('[', "to open \"procs\"");
        if (!sc.eat(']')) {
          do {
            const std::uint64_t raw = sc.parse_uint("a processor module id");
            if (raw < 1 || raw > sys.soc().modules.size()) sc.die("no module ", raw);
            const int id = static_cast<int>(raw);
            if (!sys.soc().module(id).is_processor) {
              sc.die("module ", id, " ('", sys.soc().module(id).name,
                     "') is not a processor");
            }
            event.increment.fail_processor(id);
          } while (sc.eat(','));
          sc.expect(']', "to close \"procs\"");
        }
      } else {
        sc.die("unknown key \"", key, "\" (expected cycle|links|routers|procs)");
      }
    } while (sc.eat(','));
    sc.expect('}', "to close the event object");
  }
  sc.expect_end();
  if (!saw_cycle) sc.die("event has no \"cycle\"");
  if (event.increment.empty()) {
    sc.die("event breaks nothing (need at least one link, router, or proc)");
  }
  return event;
}

}  // namespace

FaultStream parse_fault_stream(std::istream& in, const core::SystemModel& sys,
                               std::string_view name) {
  FaultStream stream;
  std::string raw;
  std::size_t line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const std::string_view text = trim(raw);
    if (text.empty()) continue;
    FaultEvent event = parse_event(text, sys, name, line);
    if (!stream.events.empty() && event.cycle <= stream.events.back().cycle) {
      fail(name, ":", line, ": event cycle ", event.cycle,
           " is not after the previous event's cycle ", stream.events.back().cycle,
           " (events must be strictly increasing in time)");
    }
    stream.events.push_back(std::move(event));
  }
  ensure(!stream.events.empty(), name, ": fault stream has no events");
  return stream;
}

FaultStream load_fault_stream(const std::string& path, const core::SystemModel& sys) {
  std::ifstream in(path);
  ensure(in.good(), "cannot open fault stream file '", path, "'");
  return parse_fault_stream(in, sys, path);
}

FaultStream random_fault_stream(const core::SystemModel& sys, std::size_t k,
                                std::uint64_t seed, std::uint64_t horizon) {
  ensure(k > 0, "random_fault_stream: need at least one event");
  std::vector<int> procs;
  for (const itc02::Module& m : sys.soc().modules) {
    if (m.is_processor) procs.push_back(m.id);
  }
  ensure(sys.mesh().channel_count() > 0 || !procs.empty(),
         "random_fault_stream: system has nothing to break");

  Rng rng = stream_rng(seed, 0x57F3A);
  // k distinct injection cycles in [1, max(horizon, k)] — horizon is
  // typically the pristine makespan, so events land mid-execution.
  const std::uint64_t span = std::max<std::uint64_t>(horizon, k);
  std::set<std::uint64_t> cycles;
  while (cycles.size() < k) cycles.insert(1 + rng.below(span));

  // True when `inc` breaks silicon `cum` has not broken yet.
  auto adds_new = [](const noc::FaultSet& cum, const noc::FaultSet& inc) {
    for (const noc::ChannelId c : inc.failed_channels()) {
      if (!cum.channel_failed(c)) return true;
    }
    for (const noc::RouterId r : inc.failed_routers()) {
      if (!cum.router_failed(r)) return true;
    }
    for (const int p : inc.failed_processors()) {
      if (!cum.processor_failed(p)) return true;
    }
    return false;
  };

  FaultStream stream;
  noc::FaultSet cumulative;
  for (const std::uint64_t cycle : cycles) {
    noc::FaultSet increment = noc::random_fault_scenario(sys.mesh(), procs, rng);
    // Prefer an increment that actually degrades something new; on a
    // small mesh late events may exhaust the options, in which case the
    // redundant draw stands (the timeline treats it as a no-op).
    for (int retry = 0; retry < 8 && (increment.empty() || !adds_new(cumulative, increment));
         ++retry) {
      increment = noc::random_fault_scenario(sys.mesh(), procs, rng);
    }
    ensure(!increment.empty(), "random_fault_stream: drew an empty fault scenario");
    merge_faults(cumulative, increment);
    stream.events.push_back({cycle, std::move(increment)});
  }
  return stream;
}

}  // namespace nocsched::search
