#pragma once
// The pluggable order-search strategy interface.
//
// A strategy explores the space of module priority orders (permutations
// that respect the planner's shuffle tiers) looking for a lower
// makespan.  It never plans schedules itself: the search::Driver owns
// the evaluation loop and calls back into the strategy to (a) seed each
// independent chain with a starting order, (b) propose the next order
// to evaluate, and (c) decide whether an evaluated proposal replaces
// the chain's incumbent.  Keeping the loop in the driver means every
// strategy inherits the same determinism contract for free: chains are
// independent, seeded by (seed, chain index), and reduced serially, so
// any strategy is bit-identical at every job count.
//
// Strategies are stateless and const — one instance is shared by all
// chains on all threads.  All mutable per-chain state lives in
// ChainState, which the driver owns and threads through the callbacks.

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "search/eval_context.hpp"

namespace nocsched::search {

/// The built-in strategies.
enum class StrategyKind {
  kRestart,  ///< independent random restarts (PR 3's multistart, exactly)
  kAnneal,   ///< simulated annealing with a seeded reheat schedule
  kLocal,    ///< greedy first-improvement pairwise-swap descent
};

/// "restart" | "anneal" | "local".
[[nodiscard]] std::string_view to_string(StrategyKind kind);

/// Inverse of to_string; throws nocsched::Error on unknown names.
[[nodiscard]] StrategyKind parse_strategy(std::string_view name);

/// Mutable per-chain search state.  The driver owns the incumbent and
/// the bookkeeping counters; the trailing scratch fields belong to the
/// strategy (their meaning is strategy-specific and other components
/// must not read them).
struct ChainState {
  std::vector<int> order;         ///< incumbent order (already evaluated)
  std::uint64_t makespan = 0;     ///< incumbent's makespan
  std::uint64_t budget = 0;       ///< order evaluations allotted to this chain
  std::uint64_t step = 0;         ///< proposals made so far
  std::uint64_t since_accept = 0;  ///< consecutive proposals not adopted

  // Strategy scratch.  anneal: temperature/t0/cool; local: cursor into
  // the within-tier swap-pair list.
  double temperature = 0.0;
  double t0 = 0.0;
  double cool = 1.0;
  std::size_t cursor = 0;
};

/// One order the driver should evaluate next.
struct Proposal {
  std::vector<int> order;
  /// When true the driver adopts the order unconditionally (a fresh
  /// descent start / diversification jump), bypassing accept().
  bool reset = false;
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Number of independent chains an iteration budget of `iters` order
  /// evaluations is split into.  Must be in [1, iters] for iters > 0;
  /// a pure function of `iters` so the split never depends on the job
  /// count.
  [[nodiscard]] virtual std::uint64_t chains(std::uint64_t iters) const = 0;

  /// Fill `state.order` and any scratch fields for chain `chain`.
  /// `warm_order` is the order the driver's deterministic pass planned:
  /// the base priority order, or the projection of
  /// SearchOptions::warm_start_order when a caller injected one (the
  /// timeline replanner seeds each replan from the previous best
  /// surviving order this way).  Returns true when the chain
  /// warm-starts from exactly that order: the driver then seeds the
  /// incumbent's makespan from its already-evaluated deterministic pass
  /// instead of spending a budgeted evaluation re-deriving it.  Return
  /// false for any other order (even one that happens to coincide with
  /// it — e.g. a restart shuffle on a tiny system — so evaluation
  /// counts stay a pure function of the options).
  virtual bool init_chain(ChainState& state, const EvalContext& ctx,
                          const std::vector<int>& warm_order, std::uint64_t chain,
                          Rng& rng) const = 0;

  /// Next order to evaluate, or nullopt to end the chain early (a
  /// converged descent with nothing left to try).  May update scratch
  /// fields (cool a temperature, advance a sweep cursor, reheat).
  [[nodiscard]] virtual std::optional<Proposal> propose(ChainState& state,
                                                        const EvalContext& ctx,
                                                        Rng& rng) const = 0;

  /// Does a (non-reset) proposal whose evaluated makespan is `proposed`
  /// replace the incumbent?  Called once per evaluated proposal.
  [[nodiscard]] virtual bool accept(const ChainState& state, std::uint64_t proposed,
                                    Rng& rng) const = 0;
};

/// The built-in strategy for `kind`; the returned object is immutable
/// and safe to share across threads.
[[nodiscard]] const Strategy& strategy_for(StrategyKind kind);

}  // namespace nocsched::search
