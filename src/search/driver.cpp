#include "search/driver.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/delta_planner.hpp"
#include "obs/trace.hpp"

namespace nocsched::search {

namespace {

/// Bucket bounds of the delta.suffix_commits histogram (re-priced
/// commits per replan; suffixes longer than the largest bound land in
/// the overflow bucket).
const std::vector<std::uint64_t>& suffix_bounds() {
  static const std::vector<std::uint64_t> kBounds = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  return kBounds;
}

/// Fold `lengths` into a hand-built histogram snapshot with the same
/// bucket semantics as obs::Histogram (count <= bound, overflow last).
obs::HistogramSnapshot suffix_histogram(const std::vector<std::uint32_t>& lengths) {
  const std::vector<std::uint64_t>& bounds = suffix_bounds();
  obs::HistogramSnapshot h;
  h.bounds = bounds;
  h.counts.assign(bounds.size() + 1, 0);
  for (const std::uint32_t v : lengths) {
    const auto it = std::lower_bound(bounds.begin(), bounds.end(), std::uint64_t{v});
    ++h.counts[static_cast<std::size_t>(it - bounds.begin())];
    h.sum += v;
    ++h.count;
  }
  return h;
}

/// The per-run reduction totals, before they become a MetricsSnapshot.
struct RunTotals {
  std::string strategy;
  std::uint64_t iters = 0;
  std::uint64_t chains = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t proposals = 0;
  std::uint64_t accepted = 0;
  std::uint64_t resets = 0;
  std::uint64_t improvements = 0;
  std::uint64_t converged_chains = 0;
  std::uint64_t first_makespan = 0;
  std::uint64_t best_makespan = 0;
  /// Delta-kernel tallies summed over chains in chain order (all zero,
  /// suffix_lengths empty, when the delta lane never ran).
  core::DeltaStats delta;
};

/// Build the per-run snapshot and, when the global registry is
/// collecting, publish the same totals there (counters accumulate
/// across runs; gauges and info reflect the latest run).
obs::MetricsSnapshot publish(const RunTotals& t) {
  obs::MetricsSnapshot snap;
  snap.info["search.strategy"] = t.strategy;
  snap.gauges["search.iterations"] = static_cast<std::int64_t>(t.iters);
  snap.gauges["search.chains"] = static_cast<std::int64_t>(t.chains);
  snap.gauges["search.first_makespan"] = static_cast<std::int64_t>(t.first_makespan);
  snap.gauges["search.best_makespan"] = static_cast<std::int64_t>(t.best_makespan);
  snap.counters["search.evaluations"] = t.evaluations;
  snap.counters["search.proposals"] = t.proposals;
  snap.counters["search.accepted"] = t.accepted;
  snap.counters["search.resets"] = t.resets;
  snap.counters["search.improvements"] = t.improvements;
  snap.counters["search.converged_chains"] = t.converged_chains;
  // The delta lane reports only when it ran: greedy-only and delta-off
  // runs keep the exact pre-delta snapshot shape.
  const bool delta_ran = t.delta.full_plans > 0;
  if (delta_ran) {
    snap.counters["delta.full_plans"] = t.delta.full_plans;
    snap.counters["delta.replans"] = t.delta.replans;
    snap.counters["delta.noop_replans"] = t.delta.noop_replans;
    snap.counters["delta.adoptions"] = t.delta.adoptions;
    snap.counters["delta.reused_commits"] = t.delta.reused_commits;
    snap.counters["delta.replayed_commits"] = t.delta.replayed_commits;
    snap.counters["delta.repriced_commits"] = t.delta.repriced_commits;
    snap.counters["delta.probes"] = t.delta.probes;
    snap.histograms["delta.suffix_commits"] = suffix_histogram(t.delta.suffix_lengths);
  }

  obs::MetricsRegistry& reg = obs::registry();
  if (reg.enabled()) {
    // References resolved once: the registry never destroys metrics.
    static obs::Counter& runs = reg.counter("search.runs");
    static obs::Counter& evaluations = reg.counter("search.evaluations");
    static obs::Counter& proposals = reg.counter("search.proposals");
    static obs::Counter& accepted = reg.counter("search.accepted");
    static obs::Counter& resets = reg.counter("search.resets");
    static obs::Counter& improvements = reg.counter("search.improvements");
    static obs::Counter& converged = reg.counter("search.converged_chains");
    runs.inc();
    evaluations.add(t.evaluations);
    proposals.add(t.proposals);
    accepted.add(t.accepted);
    resets.add(t.resets);
    improvements.add(t.improvements);
    converged.add(t.converged_chains);
    if (delta_ran) {
      static obs::Counter& full_plans = reg.counter("delta.full_plans");
      static obs::Counter& replans = reg.counter("delta.replans");
      static obs::Counter& noop_replans = reg.counter("delta.noop_replans");
      static obs::Counter& adoptions = reg.counter("delta.adoptions");
      static obs::Counter& reused = reg.counter("delta.reused_commits");
      static obs::Counter& replayed = reg.counter("delta.replayed_commits");
      static obs::Counter& repriced = reg.counter("delta.repriced_commits");
      static obs::Counter& probes = reg.counter("delta.probes");
      static obs::Histogram& suffixes =
          reg.histogram("delta.suffix_commits", suffix_bounds());
      full_plans.add(t.delta.full_plans);
      replans.add(t.delta.replans);
      noop_replans.add(t.delta.noop_replans);
      adoptions.add(t.delta.adoptions);
      reused.add(t.delta.reused_commits);
      replayed.add(t.delta.replayed_commits);
      repriced.add(t.delta.repriced_commits);
      probes.add(t.delta.probes);
      // Chain order: suffix_lengths was concatenated by the serial
      // reduction, so the histogram totals are jobs-independent.
      for (const std::uint32_t len : t.delta.suffix_lengths) suffixes.observe(len);
    }
    reg.gauge("search.iterations").set(static_cast<std::int64_t>(t.iters));
    reg.gauge("search.chains").set(static_cast<std::int64_t>(t.chains));
    reg.gauge("search.first_makespan").set(static_cast<std::int64_t>(t.first_makespan));
    reg.gauge("search.best_makespan").set(static_cast<std::int64_t>(t.best_makespan));
    reg.set_info("search.strategy", t.strategy);
  }
  return snap;
}

/// Everything one chain reports back to the reduction.
struct ChainOutcome {
  std::vector<int> best_order;  ///< filled only when record_best_order
  std::uint64_t best_makespan = 0;
  std::uint64_t evals = 0;
  std::uint64_t proposals = 0;
  std::uint64_t accepted = 0;
  std::uint64_t resets = 0;
  bool converged = false;  ///< propose() ended the chain before its budget
  core::DeltaStats delta;  ///< the chain's delta-kernel tallies (if it ran one)
};

ChainOutcome run_chain(const EvalContext& ctx, const Strategy& strategy,
                       const std::vector<int>& warm_order, std::uint64_t seed,
                       std::uint64_t chain, std::uint64_t budget,
                       std::uint64_t base_makespan, bool use_delta,
                       std::uint32_t delta_spacing, bool record_best_order) {
  Rng rng = EvalContext::chain_rng(seed, chain);
  ChainState state;
  state.budget = budget;
  const bool warm_start = strategy.init_chain(state, ctx, warm_order, chain, rng);

  // One delta kernel per chain — it is stateful (incumbent trace and
  // checkpoints), so chains never share one.  A single-evaluation
  // chain (restart shuffles) has no incumbent to diff against; it
  // keeps the plain from-scratch path.
  std::optional<core::DeltaPlanner> delta;
  if (use_delta && budget > 1) delta.emplace(ctx.make_delta_planner(delta_spacing));

  ChainOutcome out;
  if (warm_start) {
    // The chain starts at the deterministic pass's order, whose
    // makespan the driver already knows — don't spend a budgeted
    // evaluation re-deriving it.
    state.makespan = base_makespan;
    if (delta) {
      // Seed the kernel's incumbent trace.  Unbudgeted, like the pass
      // itself; the kernel's plan must agree with the driver's.
      const std::uint64_t planned = delta->plan_full(state.order);
      NOCSCHED_ASSERT(planned == base_makespan);
    }
  } else {
    state.makespan = delta ? delta->plan_full(state.order) : ctx.evaluate(state.order);
    out.evals = 1;
  }
  if (record_best_order) out.best_order = state.order;
  out.best_makespan = state.makespan;

  while (out.evals < budget) {
    std::optional<Proposal> p = strategy.propose(state, ctx, rng);
    if (!p) {
      out.converged = true;
      break;
    }
    ++state.step;
    ++out.proposals;
    const std::uint64_t makespan =
        delta ? delta->evaluate(p->order) : ctx.evaluate(p->order);
    ++out.evals;
    if (makespan < out.best_makespan) {
      out.best_makespan = makespan;
      if (record_best_order) out.best_order = p->order;
    }
    if (p->reset) {
      state.order = std::move(p->order);
      state.makespan = makespan;
      state.since_accept = 0;
      ++out.resets;
      if (delta) delta->adopt();
    } else if (strategy.accept(state, makespan, rng)) {
      state.order = std::move(p->order);
      state.makespan = makespan;
      state.since_accept = 0;
      ++out.accepted;
      if (delta) delta->adopt();
    } else {
      ++state.since_accept;
    }
  }
  if (delta) out.delta = delta->stats();
  return out;
}

}  // namespace

SearchResult search_orders(const core::SystemModel& sys, const power::PowerBudget& budget,
                           const SearchOptions& options) {
  return search_orders(EvalContext(sys, budget), options);
}

SearchResult search_orders(const EvalContext& ctx, const SearchOptions& options) {
  const obs::Span span("search");
  const Strategy& strategy = strategy_for(options.strategy);

  // The deterministic pass plans the warm order when one was injected
  // (projected onto this context's plannable modules), the base
  // priority order otherwise — so an unset warm_start_order is
  // bit-identical to the pre-warm-start driver.
  const std::vector<int> root = options.warm_start_order.empty()
                                    ? ctx.base_order()
                                    : ctx.projected_order(options.warm_start_order);
  SearchResult result;
  result.best = ctx.plan(root);
  result.first_makespan = result.best.makespan;
  RunTotals totals;
  totals.strategy = std::string(strategy.name());
  totals.iters = options.iters;
  totals.evaluations = 1;
  totals.first_makespan = result.first_makespan;
  totals.best_makespan = result.best.makespan;
  if (options.iters == 0) {
    result.metrics = publish(totals);
    return result;
  }

  const std::uint64_t chains =
      std::clamp<std::uint64_t>(strategy.chains(options.iters), 1, options.iters);
  totals.chains = chains;

  // Budget split: iters / chains each, the remainder spread over the
  // lowest chain indices — a pure function of (iters, chains).
  const std::uint64_t base = options.iters / chains;
  const std::uint64_t extra = options.iters % chains;

  // With few chains (anneal/local cap at 8) keeping each chain's best
  // order costs next to nothing, so record directly; with one chain
  // per iteration (restart) that would hold every shuffle's best alive
  // at once, so store only makespans and replay the one winning chain
  // — its single evaluation — to recover the order, as PR 3 did.
  const bool record_best_order = chains <= 64;
  auto budget_of = [&](std::uint64_t c) { return base + (c < extra ? 1 : 0); };
  std::vector<ChainOutcome> outcomes(chains);
  parallel_for(chains, options.jobs, [&](std::size_t c) {
    const obs::Span chain_span("search.chain");
    outcomes[c] = run_chain(ctx, strategy, root, options.seed, c, budget_of(c),
                            result.first_makespan, options.delta, options.delta_spacing,
                            record_best_order);
  });

  // Serial reduction by (makespan, chain index): strictly-better chains
  // bump the improvement counter, exactly like PR 3's multistart scan.
  std::uint64_t best_makespan = result.first_makespan;
  std::size_t best_chain = chains;  // sentinel: the deterministic pass wins
  for (std::size_t c = 0; c < chains; ++c) {
    const ChainOutcome& out = outcomes[c];
    totals.evaluations += out.evals;
    totals.proposals += out.proposals;
    totals.accepted += out.accepted;
    totals.resets += out.resets;
    totals.delta.full_plans += out.delta.full_plans;
    totals.delta.replans += out.delta.replans;
    totals.delta.noop_replans += out.delta.noop_replans;
    totals.delta.adoptions += out.delta.adoptions;
    totals.delta.reused_commits += out.delta.reused_commits;
    totals.delta.replayed_commits += out.delta.replayed_commits;
    totals.delta.repriced_commits += out.delta.repriced_commits;
    totals.delta.probes += out.delta.probes;
    totals.delta.suffix_lengths.insert(totals.delta.suffix_lengths.end(),
                                       out.delta.suffix_lengths.begin(),
                                       out.delta.suffix_lengths.end());
    if (out.converged) ++totals.converged_chains;
    if (out.best_makespan < best_makespan) {
      best_makespan = out.best_makespan;
      best_chain = c;
      ++totals.improvements;
    }
  }
  if (best_chain < chains) {
    if (!record_best_order) {
      // Chains are deterministic, so replaying the winner (with order
      // recording on) recovers its best order.
      outcomes[best_chain] = run_chain(ctx, strategy, root, options.seed, best_chain,
                                       budget_of(best_chain), result.first_makespan,
                                       options.delta, options.delta_spacing,
                                       /*record_best_order=*/true);
      NOCSCHED_ASSERT(outcomes[best_chain].best_makespan == best_makespan);
    }
    result.best = ctx.plan(outcomes[best_chain].best_order);
    NOCSCHED_ASSERT(result.best.makespan == best_makespan);
  }
  totals.best_makespan = result.best.makespan;
  result.metrics = publish(totals);
  return result;
}

}  // namespace nocsched::search
