#include "search/strategy.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace nocsched::search {

namespace {

/// Independent random restarts: chain c's single evaluation is the
/// (seed, c)-shuffled order, which is exactly what PR 3's multistart
/// explored for restart index c — the pre-refactor behaviour, kept
/// bit-identical (asserted by search property tests).
class RestartStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "restart"; }

  [[nodiscard]] std::uint64_t chains(std::uint64_t iters) const override { return iters; }

  bool init_chain(ChainState& state, const EvalContext& ctx,
                  const std::vector<int>& /*warm_order*/, std::uint64_t /*chain*/,
                  Rng& rng) const override {
    state.order = ctx.shuffled_order(rng);
    return false;
  }

  [[nodiscard]] std::optional<Proposal> propose(ChainState& /*state*/,
                                                const EvalContext& /*ctx*/,
                                                Rng& /*rng*/) const override {
    return std::nullopt;  // one evaluation per chain; nothing to iterate
  }

  [[nodiscard]] bool accept(const ChainState& /*state*/, std::uint64_t /*proposed*/,
                            Rng& /*rng*/) const override {
    return false;  // never reached: propose() ends the chain first
  }
};

/// Simulated annealing over within-tier swaps.  Each chain is an
/// independent walker: chain 0 starts from the driver's warm order (the
/// deterministic priority order, or an injected warm start — either way
/// already decent), the rest from seeded tier-shuffles.  Temperature starts at a fixed fraction
/// of the chain's starting makespan and cools geometrically so it lands
/// at the end fraction exactly when the chain's budget runs out; when a
/// walker is stuck (a run of rejected proposals) it reheats to a
/// seeded random fraction of the starting temperature, which lets it
/// climb out of the local basin without forgetting the incumbent.
class AnnealStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "anneal"; }

  [[nodiscard]] std::uint64_t chains(std::uint64_t iters) const override {
    // Enough steps per walker to actually anneal; a few walkers for
    // start diversity once the budget allows it.
    return std::clamp<std::uint64_t>(iters / 128, 1, 8);
  }

  bool init_chain(ChainState& state, const EvalContext& ctx,
                  const std::vector<int>& warm_order, std::uint64_t chain,
                  Rng& rng) const override {
    state.order = chain == 0 ? warm_order : ctx.shuffled_order(rng);
    return chain == 0;
  }

  [[nodiscard]] std::optional<Proposal> propose(ChainState& state, const EvalContext& ctx,
                                                Rng& rng) const override {
    const auto& swappable = ctx.swappable_positions();
    if (swappable.empty()) return std::nullopt;  // every tier is a singleton

    if (state.step == 0) {
      // Scales depend on the starting makespan, known only after the
      // driver evaluated the initial order — so set them lazily here.
      state.t0 = kStartFraction * static_cast<double>(state.makespan);
      state.temperature = state.t0;
      const double steps = static_cast<double>(std::max<std::uint64_t>(state.budget, 2) - 1);
      state.cool = std::pow(kEndFraction / kStartFraction, 1.0 / steps);
    }
    state.temperature *= state.cool;
    if (state.since_accept >= kStuckAfter) {
      state.temperature = state.t0 * (0.5 + 0.5 * rng.uniform01());
      state.since_accept = 0;  // one reheat per stuck run, not one per step
    }

    const std::size_t a = swappable[rng.below(swappable.size())];
    const EvalContext::Segment& seg = ctx.segment_of(a);
    std::size_t b = seg.begin + rng.below(seg.size() - 1);
    if (b >= a) ++b;

    Proposal p;
    p.order = state.order;
    std::swap(p.order[a], p.order[b]);
    return p;
  }

  [[nodiscard]] bool accept(const ChainState& state, std::uint64_t proposed,
                            Rng& rng) const override {
    if (proposed <= state.makespan) return true;
    const double delta = static_cast<double>(proposed - state.makespan);
    if (state.temperature <= 0.0) return false;
    return rng.uniform01() < std::exp(-delta / state.temperature);
  }

 private:
  static constexpr double kStartFraction = 0.02;  ///< T0 / starting makespan
  static constexpr double kEndFraction = 0.0005;  ///< final T / starting makespan
  static constexpr std::uint64_t kStuckAfter = 32;  ///< rejects before a reheat
};

/// Greedy first-improvement descent over the within-tier swap pairs.
/// Chain 0 descends from the driver's warm order, the rest from seeded
/// tier-shuffles.  The sweep cursor walks the pair list
/// cyclically; a swap that improves is kept and the sweep continues
/// from the next pair.  Once a full cycle passes with no improvement
/// the incumbent is a pairwise-swap local optimum, and the chain
/// restarts the descent from a fresh shuffled order (budget allowing).
class LocalStrategy final : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "local"; }

  [[nodiscard]] std::uint64_t chains(std::uint64_t iters) const override {
    return std::clamp<std::uint64_t>(iters / 64, 1, 8);
  }

  bool init_chain(ChainState& state, const EvalContext& ctx,
                  const std::vector<int>& warm_order, std::uint64_t chain,
                  Rng& rng) const override {
    state.order = chain == 0 ? warm_order : ctx.shuffled_order(rng);
    return chain == 0;
  }

  [[nodiscard]] std::optional<Proposal> propose(ChainState& state, const EvalContext& ctx,
                                                Rng& rng) const override {
    const auto& pairs = ctx.swap_pairs();
    if (pairs.empty()) return std::nullopt;

    if (state.since_accept >= pairs.size()) {
      // Pairwise-swap local optimum: every swap was tried against this
      // incumbent and none improved.  Restart the descent elsewhere.
      Proposal p;
      p.order = ctx.shuffled_order(rng);
      p.reset = true;
      return p;
    }

    const auto [i, j] = pairs[state.cursor];
    state.cursor = (state.cursor + 1) % pairs.size();
    Proposal p;
    p.order = state.order;
    std::swap(p.order[i], p.order[j]);
    return p;
  }

  [[nodiscard]] bool accept(const ChainState& state, std::uint64_t proposed,
                            Rng& /*rng*/) const override {
    return proposed < state.makespan;  // strict descent only
  }
};

}  // namespace

std::string_view to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kRestart:
      return "restart";
    case StrategyKind::kAnneal:
      return "anneal";
    case StrategyKind::kLocal:
      return "local";
  }
  return "?";
}

StrategyKind parse_strategy(std::string_view name) {
  if (name == "restart") return StrategyKind::kRestart;
  if (name == "anneal") return StrategyKind::kAnneal;
  if (name == "local") return StrategyKind::kLocal;
  fail("unknown search strategy '", name, "' (expected restart|anneal|local)");
}

const Strategy& strategy_for(StrategyKind kind) {
  static const RestartStrategy restart;
  static const AnnealStrategy anneal;
  static const LocalStrategy local;
  switch (kind) {
    case StrategyKind::kRestart:
      return restart;
    case StrategyKind::kAnneal:
      return anneal;
    case StrategyKind::kLocal:
      return local;
  }
  fail("unknown StrategyKind ", static_cast<int>(kind));
}

}  // namespace nocsched::search
