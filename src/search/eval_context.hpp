#pragma once
// Shared evaluation context for order search.
//
// Everything a search strategy needs that is invariant across the whole
// search lives here, built once per search::Driver run: the PairTable
// (pair legality and session cost never change), the CPU-eligibility
// bitmap, the deterministic base priority order, and the shuffle-tier
// partition that every legal order must respect (processor bootstrap
// first, then ATE-only cores, then flexible cores — shuffling or
// swapping across tiers would break the planner's bootstrap invariant).
// The context is immutable after construction and safe to share by
// const reference across concurrent chains; per-chain randomness comes
// from chain_rng's (seed, chain index) scheme, never from shared state.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/delta_planner.hpp"
#include "core/pair_table.hpp"
#include "core/schedule.hpp"
#include "core/system_model.hpp"
#include "noc/fault.hpp"
#include "power/budget.hpp"

namespace nocsched::search {

class EvalContext {
 public:
  EvalContext(const core::SystemModel& sys, const power::PowerBudget& budget);

  /// As the two-argument form, with the pristine PairTable moved in
  /// instead of rebuilt: `table` must equal PairTable(sys).  The
  /// engine's ContextCache hands per-request copies of one shared
  /// pristine table to budget-specific contexts this way, skipping the
  /// table build (the expensive part of context construction) on every
  /// cache hit.  The resulting context is indistinguishable from the
  /// two-argument form — asserted by tests/engine/.
  EvalContext(const core::SystemModel& sys, const power::PowerBudget& budget,
              core::PairTable&& table);

  /// Degraded-system context for fault-aware replanning: `table` must
  /// be the PairTable of `sys` under `faults` (from-scratch or via
  /// apply_faults — the caller picks the build path, which is what the
  /// fault-sweep bench measures).  Dead processors are masked out of
  /// the eligibility bitmap, modules with no surviving pair are
  /// excluded from the base order (search::replan reports them), and
  /// evaluation plans the surviving subset only.  The table is an
  /// owning sink (rvalue reference per rule D4): callers move a table
  /// in rather than copying one that is shared elsewhere.
  EvalContext(const core::SystemModel& sys, const power::PowerBudget& budget,
              core::PairTable&& table, const noc::FaultSet& faults);

  /// Mid-timeline degraded context: on top of the fault masking above,
  /// only modules whose `candidates` bit (by module id - 1) is set are
  /// planned — modules already tested in earlier epochs are not — and
  /// processors in `pretested` completed their own test in an earlier
  /// epoch, so they serve from instant 0 and never strand a client in
  /// the testability fixpoint.  `pretested` must be ascending, unique,
  /// live (not in `faults`) processor module ids.
  EvalContext(const core::SystemModel& sys, const power::PowerBudget& budget,
              core::PairTable&& table, const noc::FaultSet& faults,
              const std::vector<bool>& candidates, std::vector<int> pretested);

  /// Makespan of planning `sys` with `order` (the search hot path: the
  /// schedule itself is discarded; the driver re-plans the winner once).
  [[nodiscard]] std::uint64_t evaluate(const std::vector<int>& order) const;

  /// Full schedule for `order` (deterministic pass and final winner).
  [[nodiscard]] core::Schedule plan(const std::vector<int>& order) const;

  /// A delta-evaluation kernel over this context's system, budget, and
  /// pair table: DeltaPlanner::evaluate prices any order this context's
  /// evaluate() accepts, bit-identically, re-pricing only the schedule
  /// suffix a move perturbs.  The kernel borrows this context's table —
  /// it must not outlive the context.  One kernel per search chain: it
  /// is stateful (incumbent trace + checkpoints) and single-threaded.
  [[nodiscard]] core::DeltaPlanner make_delta_planner(std::uint32_t checkpoint_spacing) const;

  /// The deterministic priority order (concatenation of the tiers).
  [[nodiscard]] const std::vector<int>& base_order() const { return base_order_; }

  /// Tier-legal projection of a preferred order onto this context's
  /// plannable modules: within each shuffle tier, modules named in
  /// `preferred` come first in their preferred relative order, the rest
  /// keep their base-order relative order; modules of `preferred` that
  /// this context does not plan (dead, completed, stranded) simply drop
  /// out.  With an empty or fully-foreign `preferred` this is exactly
  /// base_order() — the warm-start regression contract.
  [[nodiscard]] std::vector<int> projected_order(const std::vector<int>& preferred) const;

  /// A contiguous run of positions in any tier-respecting order whose
  /// modules share a shuffle tier; `[begin, end)` indexes the order.
  struct Segment {
    std::size_t begin = 0;
    std::size_t end = 0;
    [[nodiscard]] std::size_t size() const { return end - begin; }
  };

  /// Tier segments in order (empty tiers omitted).
  [[nodiscard]] const std::vector<Segment>& segments() const { return segments_; }

  /// Positions that belong to a segment of size >= 2 — the positions a
  /// within-tier swap move may touch.
  [[nodiscard]] const std::vector<std::size_t>& swappable_positions() const {
    return swappable_positions_;
  }

  /// Segment containing position `pos` (requires pos < order size).
  [[nodiscard]] const Segment& segment_of(std::size_t pos) const {
    return segments_[segment_index_[pos]];
  }

  /// Every within-tier position pair (i < j), enumerated segment by
  /// segment — the greedy descent's deterministic sweep list.
  [[nodiscard]] const std::vector<std::pair<std::size_t, std::size_t>>& swap_pairs() const {
    return swap_pairs_;
  }

  /// A fresh random order: each tier shuffled independently, tiers
  /// concatenated.  Consumes `rng` exactly as PR 3's multistart did, so
  /// the restart strategy reproduces it bit-for-bit.
  [[nodiscard]] std::vector<int> shuffled_order(Rng& rng) const;

  /// RNG for chain `chain` of a search seeded with `seed`: the stream
  /// depends only on (seed, chain), never on thread or schedule, which
  /// is what makes any chain count bit-identical at any job count.
  [[nodiscard]] static Rng chain_rng(std::uint64_t seed, std::uint64_t chain) {
    return stream_rng(seed, chain);
  }

  [[nodiscard]] const core::SystemModel& system() const { return sys_; }
  [[nodiscard]] const core::PairTable& pair_table() const { return pairs_; }
  [[nodiscard]] const std::vector<bool>& cpu_eligible() const { return eligible_; }
  [[nodiscard]] const std::vector<int>& pretested() const { return pretested_; }

 private:
  void build_tiers();

  const core::SystemModel& sys_;
  power::PowerBudget budget_;
  core::PairTable pairs_;
  bool subset_ = false;  ///< fault mode: the order is a strict subset
  std::vector<int> pretested_;  ///< processors tested in earlier epochs
  std::vector<bool> eligible_;
  std::vector<int> base_order_;
  std::vector<std::vector<int>> tiers_;
  std::vector<Segment> segments_;
  std::vector<std::size_t> segment_index_;  // position -> index into segments_
  std::vector<std::size_t> swappable_positions_;
  std::vector<std::pair<std::size_t, std::size_t>> swap_pairs_;
};

}  // namespace nocsched::search
