#pragma once
// Deterministic parallel driver for order search.
//
// The driver generalizes PR 3's multistart determinism scheme to any
// Strategy: the iteration budget is split into independent chains, each
// chain's RNG stream is seeded by (seed, chain index) alone, chains run
// on any number of threads via parallel_for, and the per-chain bests
// are reduced serially by (makespan, chain index).  The result is a
// pure function of (system, budget, options) — bit-identical at every
// job count, asserted across strategies by the search test suite.
//
// The deterministic priority-order pass always runs first (it is the
// baseline every strategy must beat and the answer when iters == 0);
// the iteration budget counts the order evaluations spent beyond it.

#include <cstdint>
#include <string>

#include "core/schedule.hpp"
#include "core/system_model.hpp"
#include "power/budget.hpp"
#include "search/strategy.hpp"

namespace nocsched::search {

struct SearchOptions {
  StrategyKind strategy = StrategyKind::kRestart;
  /// Order evaluations beyond the deterministic pass (0 = greedy only).
  std::uint64_t iters = 0;
  std::uint64_t seed = 0x5EED;
  /// Threads running chains (0 = one per hardware thread; <= 1 serial).
  unsigned jobs = 1;
};

/// What the search did — emitted by report::* alongside the schedule so
/// runs are comparable ("was that makespan 10 evaluations or 10,000?").
struct SearchTelemetry {
  std::string strategy;
  std::uint64_t iters = 0;         ///< requested iteration budget
  std::uint64_t chains = 0;        ///< independent chains run
  std::uint64_t evaluations = 0;   ///< orders planned, incl. the deterministic pass
  std::uint64_t proposals = 0;     ///< strategy moves evaluated (0 for restart)
  std::uint64_t accepted = 0;      ///< proposals that replaced a chain incumbent
  std::uint64_t resets = 0;        ///< descent restarts / diversification jumps
  std::uint64_t improvements = 0;  ///< global-best updates during the reduction
  std::uint64_t converged_chains = 0;  ///< chains that stopped before their budget
  std::uint64_t first_makespan = 0;    ///< the deterministic pass's makespan
  std::uint64_t best_makespan = 0;
};

struct SearchResult {
  core::Schedule best;
  std::uint64_t first_makespan = 0;
  SearchTelemetry telemetry;
};

/// Search for a low-makespan order of `sys` under `budget`.  Every
/// candidate order goes through the same planner (and is validated by
/// callers exactly like a greedy plan); the best schedule is re-planned
/// once from the winning chain's order.
[[nodiscard]] SearchResult search_orders(const core::SystemModel& sys,
                                         const power::PowerBudget& budget,
                                         const SearchOptions& options);

/// As above over a caller-built EvalContext — the fault-aware replanner
/// supplies a degraded context (masked eligibility, surviving modules
/// only) and inherits the same determinism contract.
[[nodiscard]] SearchResult search_orders(const EvalContext& ctx, const SearchOptions& options);

}  // namespace nocsched::search
