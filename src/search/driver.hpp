#pragma once
// Deterministic parallel driver for order search.
//
// The driver generalizes PR 3's multistart determinism scheme to any
// Strategy: the iteration budget is split into independent chains, each
// chain's RNG stream is seeded by (seed, chain index) alone, chains run
// on any number of threads via parallel_for, and the per-chain bests
// are reduced serially by (makespan, chain index).  The result is a
// pure function of (system, budget, options) — bit-identical at every
// job count, asserted across strategies by the search test suite.
//
// The deterministic priority-order pass always runs first (it is the
// baseline every strategy must beat and the answer when iters == 0);
// the iteration budget counts the order evaluations spent beyond it.

#include <cstdint>
#include <vector>

#include "core/schedule.hpp"
#include "core/system_model.hpp"
#include "obs/metrics.hpp"
#include "power/budget.hpp"
#include "search/strategy.hpp"

namespace nocsched::search {

struct SearchOptions {
  StrategyKind strategy = StrategyKind::kRestart;
  /// Order evaluations beyond the deterministic pass (0 = greedy only).
  std::uint64_t iters = 0;
  std::uint64_t seed = 0x5EED;
  /// Threads running chains (0 = one per hardware thread; <= 1 serial).
  unsigned jobs = 1;
  /// Delta evaluation: chains with a budget > 1 price proposals through
  /// a per-chain core::DeltaPlanner (checkpointed suffix re-pricing)
  /// instead of from-scratch plans.  The makespans are bit-identical
  /// either way (the kernel's mandatory property), so this is purely a
  /// throughput switch — off is the reference lane the delta_eval bench
  /// compares against.
  bool delta = true;
  /// Commits between PlannerState checkpoints inside the delta kernel.
  std::uint32_t delta_spacing = 16;
  /// Warm-start order for the deterministic pass (and for chain 0 of
  /// the strategies that warm-start).  Empty = unset: the pass plans
  /// the context's base priority order, the pre-existing behaviour.
  /// When set, the order is projected onto the context's plannable
  /// modules (EvalContext::projected_order) first, so a caller may pass
  /// the surviving order of a previous epoch verbatim — modules that
  /// have since died or completed simply drop out.  The timeline
  /// replanner seeds each replan from the previous best this way.
  std::vector<int> warm_start_order;
};

/// Per-run record of what the search did, emitted by report::*
/// alongside the schedule so runs are comparable ("was that makespan 10
/// evaluations or 10,000?").  Filled from the serial chain reduction —
/// a pure function of (system, budget, options), independent of --jobs
/// and of whether the global obs registry is collecting.
///
///   info   search.strategy
///   gauges search.iterations search.chains search.first_makespan
///          search.best_makespan
///   ctrs   search.evaluations search.proposals search.accepted
///          search.resets search.improvements search.converged_chains
///   ctrs   delta.full_plans delta.replans delta.noop_replans
///          delta.adoptions delta.reused_commits delta.replayed_commits
///          delta.repriced_commits delta.probes   (delta lane only)
///   hist   delta.suffix_commits — re-priced commits per replan
struct SearchResult {
  core::Schedule best;
  std::uint64_t first_makespan = 0;
  obs::MetricsSnapshot metrics;
};

/// Search for a low-makespan order of `sys` under `budget`.  Every
/// candidate order goes through the same planner (and is validated by
/// callers exactly like a greedy plan); the best schedule is re-planned
/// once from the winning chain's order.
[[nodiscard]] SearchResult search_orders(const core::SystemModel& sys,
                                         const power::PowerBudget& budget,
                                         const SearchOptions& options);

/// As above over a caller-built EvalContext — the fault-aware replanner
/// supplies a degraded context (masked eligibility, surviving modules
/// only) and inherits the same determinism contract.
[[nodiscard]] SearchResult search_orders(const EvalContext& ctx, const SearchOptions& options);

}  // namespace nocsched::search
