#pragma once
// Online fault streams: timed fault events for mid-execution replans.
//
// PR 5's replanner answers "the mesh just degraded — what now?" for a
// single fault set.  A FaultStream generalizes that to a *timeline*: K
// events, each an increment of newly-broken silicon with an absolute
// injection cycle, strictly ordered in time.  The sim::timeline engine
// drives one warm-started incremental replan per event, chaining
// PairTable::apply_faults across the growing cumulative fault set.
//
// Streams come from two places, both deterministic:
//   * a JSONL file (one event per line) via load_fault_stream — the CLI
//     `--fault-stream-file` input, rejected with <path>:<line>-prefixed
//     diagnostics on malformed input;
//   * a seeded generator via random_fault_stream — the CLI
//     `--fault-stream K` mode and the bench/fault_stream scenarios.

#include <cstdint>
#include <istream>
#include <string>
#include <string_view>
#include <vector>

#include "core/system_model.hpp"
#include "noc/fault.hpp"

namespace nocsched::search {

/// Injection cycles above this are rejected at parse time: far beyond
/// any real makespan, yet small enough that epoch-origin arithmetic
/// (origin + observed end) can never overflow a uint64.
inline constexpr std::uint64_t kMaxEventCycle = std::uint64_t{1} << 62;

/// One timed degradation: at absolute cycle `cycle`, everything in
/// `increment` breaks (on top of whatever broke earlier).
struct FaultEvent {
  std::uint64_t cycle = 0;
  noc::FaultSet increment;
};

/// A validated event sequence: cycles strictly increasing, every
/// increment non-empty and resolved against one concrete system.
struct FaultStream {
  std::vector<FaultEvent> events;

  /// Union of the first `upto` increments (upto == events.size() gives
  /// the fully-degraded system).  FaultSet dedups, so increments that
  /// re-break already-broken silicon merge harmlessly.
  [[nodiscard]] noc::FaultSet cumulative(std::size_t upto) const;
};

/// Merge every fault of `increment` into `faults`.
void merge_faults(noc::FaultSet& faults, const noc::FaultSet& increment);

/// Parse a JSONL fault stream: one event object per non-empty line,
///
///   {"cycle": 1200, "links": ["0:1"], "routers": [2], "procs": [7]}
///
/// where "cycle" is the absolute injection cycle (<= kMaxEventCycle,
/// strictly increasing line to line), "links" lists directed channels
/// as FROM:TO ids of adjacent routers, "routers" lists router ids, and
/// "procs" lists processor module ids of `sys`.  At least one of the
/// three fault lists must be non-empty per event.  Malformed input
/// fails with a "<name>:<line>: ..." diagnostic naming the offending
/// field and value.
[[nodiscard]] FaultStream parse_fault_stream(std::istream& in, const core::SystemModel& sys,
                                             std::string_view name);

/// parse_fault_stream over the file at `path` (diagnostics use the
/// path as the stream name); fails if the file cannot be opened.
[[nodiscard]] FaultStream load_fault_stream(const std::string& path,
                                            const core::SystemModel& sys);

/// A seeded random stream of `k` events over `sys`: k distinct
/// injection cycles in [1, max(horizon, k)] and one random fault
/// scenario per event (noc::random_fault_scenario, re-drawn up to a few
/// times when a draw only re-breaks already-broken silicon).  A pure
/// function of (sys, k, seed, horizon).
[[nodiscard]] FaultStream random_fault_stream(const core::SystemModel& sys, std::size_t k,
                                              std::uint64_t seed, std::uint64_t horizon);

}  // namespace nocsched::search
