#include "search/eval_context.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "core/scheduler.hpp"

namespace nocsched::search {

EvalContext::EvalContext(const core::SystemModel& sys, const power::PowerBudget& budget)
    : sys_(sys),
      budget_(budget),
      pairs_(sys),
      eligible_(core::cpu_eligible_modules(sys)),
      base_order_(core::priority_order(sys)) {
  build_tiers();
}

EvalContext::EvalContext(const core::SystemModel& sys, const power::PowerBudget& budget,
                         core::PairTable&& table)
    : sys_(sys),
      budget_(budget),
      pairs_(std::move(table)),
      eligible_(core::cpu_eligible_modules(sys)),
      base_order_(core::priority_order(sys)) {
  build_tiers();
}

EvalContext::EvalContext(const core::SystemModel& sys, const power::PowerBudget& budget,
                         core::PairTable&& table, const noc::FaultSet& faults)
    : sys_(sys),
      budget_(budget),
      pairs_(std::move(table)),
      subset_(true),
      eligible_(core::cpu_eligible_modules(sys, faults)) {
  // Only modules the degraded table can actually serve are planned;
  // the rest (dead processors, unroutable or power-infeasible cores,
  // and the cores stranded transitively when their only serving
  // processor lost its own test) are the replan's reported losses.
  base_order_ =
      core::priority_order(sys, eligible_, pairs_.testable_modules(sys, budget.limit));
  build_tiers();
}

EvalContext::EvalContext(const core::SystemModel& sys, const power::PowerBudget& budget,
                         core::PairTable&& table, const noc::FaultSet& faults,
                         const std::vector<bool>& candidates, std::vector<int> pretested)
    : sys_(sys),
      budget_(budget),
      pairs_(std::move(table)),
      subset_(true),
      pretested_(std::move(pretested)),
      eligible_(core::cpu_eligible_modules(sys, faults)) {
  ensure(candidates.size() == sys.soc().modules.size(),
         "EvalContext: candidates bitmap has ", candidates.size(), " entries for ",
         sys.soc().modules.size(), " modules");
  // Plannable = still wanted (a candidate) AND servable by the degraded
  // table, where pretested processors count as servers without needing
  // their own (already completed) test in this plan.
  std::vector<bool> include = pairs_.testable_modules(sys, budget.limit, pretested_);
  for (std::size_t i = 0; i < include.size(); ++i) {
    if (!candidates[i]) include[i] = false;
  }
  base_order_ = core::priority_order(sys, eligible_, include);
  build_tiers();
}

void EvalContext::build_tiers() {
  // Partition the base order into shuffle tiers: 0 = processor
  // self-tests (only when the bootstrap runs them first), 1 = ATE-only
  // cores, 2 = flexible cores.  priority_order sorts by exactly this
  // partition before any policy key, so the base order is the tiers
  // concatenated and each tier is one contiguous position segment.
  tiers_.resize(3);
  for (int id : base_order_) {
    const std::size_t tier =
        (sys_.soc().module(id).is_processor && sys_.params().processors_first) ? 0
        : eligible_[static_cast<std::size_t>(id - 1)]                          ? 2
                                                                               : 1;
    tiers_[tier].push_back(id);
  }

  segment_index_.resize(base_order_.size());
  std::size_t pos = 0;
  for (const std::vector<int>& tier : tiers_) {
    if (tier.empty()) continue;
    const Segment seg{pos, pos + tier.size()};
    for (std::size_t p = seg.begin; p < seg.end; ++p) {
      segment_index_[p] = segments_.size();
      if (seg.size() >= 2) swappable_positions_.push_back(p);
    }
    for (std::size_t i = seg.begin; i < seg.end; ++i) {
      for (std::size_t j = i + 1; j < seg.end; ++j) swap_pairs_.emplace_back(i, j);
    }
    segments_.push_back(seg);
    pos = seg.end;
  }
}

std::uint64_t EvalContext::evaluate(const std::vector<int>& order) const {
  return plan(order).makespan;
}

core::Schedule EvalContext::plan(const std::vector<int>& order) const {
  return subset_ ? core::plan_tests_subset(sys_, budget_, order, pairs_, pretested_)
                 : core::plan_tests_with_order(sys_, budget_, order, pairs_);
}

core::DeltaPlanner EvalContext::make_delta_planner(std::uint32_t checkpoint_spacing) const {
  return core::DeltaPlanner(sys_, budget_, pairs_, pretested_, checkpoint_spacing);
}

std::vector<int> EvalContext::projected_order(const std::vector<int>& preferred) const {
  // Rank of each module in the preferred order; modules absent from it
  // rank after every present one, breaking ties by base-order position
  // (tiers_ already lists each tier in base order, and the sort below
  // is stable, so absent modules keep their base relative order).
  std::vector<std::size_t> rank(sys_.soc().modules.size(), preferred.size());
  for (std::size_t i = 0; i < preferred.size(); ++i) {
    const int id = preferred[i];
    ensure(id >= 1 && static_cast<std::size_t>(id) <= rank.size(),
           "projected_order: unknown module id ", id);
    const std::size_t slot = static_cast<std::size_t>(id - 1);
    if (rank[slot] == preferred.size()) rank[slot] = i;  // first occurrence wins
  }
  std::vector<int> order;
  order.reserve(base_order_.size());
  for (const std::vector<int>& tier : tiers_) {
    std::vector<int> projected = tier;
    std::stable_sort(projected.begin(), projected.end(), [&](int a, int b) {
      return rank[static_cast<std::size_t>(a - 1)] < rank[static_cast<std::size_t>(b - 1)];
    });
    order.insert(order.end(), projected.begin(), projected.end());
  }
  return order;
}

std::vector<int> EvalContext::shuffled_order(Rng& rng) const {
  std::vector<int> order;
  order.reserve(base_order_.size());
  for (const std::vector<int>& tier : tiers_) {
    std::vector<int> shuffled = tier;
    rng.shuffle(shuffled);
    order.insert(order.end(), shuffled.begin(), shuffled.end());
  }
  return order;
}

}  // namespace nocsched::search
