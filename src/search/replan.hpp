#pragma once
// Fault-aware replanning: when links, routers, or reused processors
// die mid-session, re-derive a test plan for the degraded system.
//
// The replan masks dead processors out of the CPU-eligibility bitmap,
// drops modules that no surviving interface pair can reach (reporting
// them, rather than failing — the controller must know exactly what
// coverage it lost), and re-runs the src/search/ driver over the
// surviving modules, so every search strategy and the full determinism
// contract (bit-identical at any --jobs count) carry over unchanged.
//
// Two table paths exist on purpose: the plain overload rebuilds the
// degraded PairTable from scratch, the `pristine` overload copies a
// prebuilt pristine table and incrementally re-enumerates only the
// fault-touched modules (PairTable::apply_faults).  They produce
// bit-identical results; bench/fault_sweep measures the gap.

#include <cstdint>
#include <vector>

#include "core/pair_table.hpp"
#include "core/schedule.hpp"
#include "core/system_model.hpp"
#include "noc/fault.hpp"
#include "power/budget.hpp"
#include "search/driver.hpp"

namespace nocsched::search {

struct ReplanResult {
  core::Schedule schedule;      ///< plan covering every still-testable module
  obs::MetricsSnapshot metrics; ///< what the search spent finding it (search.*)
  /// Failed processor modules — dead silicon, excluded from planning.
  std::vector<int> dead_modules;
  /// Surviving modules with no usable interface pair under the faults
  /// (unroutable or served only by dead processors): coverage lost.
  std::vector<int> untestable_modules;
  /// Modules the schedule actually tests (ascending ids).
  std::vector<int> planned_modules;
  /// Modules whose pair lists the incremental path re-enumerated (0 on
  /// the from-scratch path and for empty fault sets).
  std::size_t pairs_rebuilt = 0;
};

/// Replan `sys` under `faults`, building the degraded PairTable from
/// scratch.
[[nodiscard]] ReplanResult replan(const core::SystemModel& sys,
                                  const power::PowerBudget& budget,
                                  const noc::FaultSet& faults, const SearchOptions& options);

/// Replan reusing `pristine` (the fault-free PairTable of `sys`):
/// copies it and incrementally degrades the copy.  Bit-identical to the
/// from-scratch overload.
[[nodiscard]] ReplanResult replan(const core::SystemModel& sys,
                                  const power::PowerBudget& budget,
                                  const noc::FaultSet& faults, const SearchOptions& options,
                                  const core::PairTable& pristine);

/// Mid-timeline replan: plan only the modules whose `candidates` bit
/// (by module id - 1) is still set — work completed in earlier epochs
/// is not redone — with `pretested` processors (ascending, unique, not
/// dead) serving from instant 0.  `table` must already be the PairTable
/// of `sys` under `faults` (the timeline engine chains one master table
/// across events via apply_faults and hands in a copy per epoch);
/// `pairs_rebuilt` is reported through, it is not recomputed here.
/// Non-candidate modules appear in none of the result's module lists:
/// dead/untestable/planned classify the candidates only, so coverage
/// accounting across epochs never double-counts a module.  Inherits the
/// full determinism contract; options.warm_start_order seeds chain 0.
[[nodiscard]] ReplanResult replan_subset(const core::SystemModel& sys,
                                         const power::PowerBudget& budget,
                                         const noc::FaultSet& faults,
                                         const SearchOptions& options,
                                         core::PairTable&& table, std::size_t pairs_rebuilt,
                                         const std::vector<bool>& candidates,
                                         std::vector<int> pretested);

}  // namespace nocsched::search
