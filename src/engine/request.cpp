#include "engine/request.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "itc02/builtin.hpp"
#include "report/json_util.hpp"

namespace nocsched::engine {

namespace {

void append_rates(std::string& key, const core::CpuRates& r) {
  key += report::json_number(r.per_stimulus_flit);
  key += ',';
  key += report::json_number(r.per_response_flit);
  key += ',';
  key += report::json_number(r.per_pattern_overhead);
  key += ',';
  key += report::json_number(r.setup_cycles);
  key += ',';
  key += report::json_number(r.active_power);
  key += ',';
  key += cat(r.program_bytes, ',', r.memory_bytes);
}

}  // namespace

std::string SystemSpec::cache_key() const {
  // The source spec first (a file path may contain any character, so it
  // goes last in its segment, length-prefixed by the '|' structure
  // being unambiguous: every other field is enum/number-valued).
  std::string key = soc_file.empty() ? cat("soc=", soc) : cat("file=", soc_file);
  key += cat("|cpu=", to_string(cpu), "|procs=", procs, "|mesh=", mesh_cols, "x", mesh_rows);
  key += cat("|wrap=", params.wrapper_chains,
             "|prio=", static_cast<int>(params.priority),
             "|choice=", static_cast<int>(params.resource_choice),
             "|pair=", static_cast<int>(params.pair_order),
             "|chan=", static_cast<int>(params.channel_model),
             "|pfirst=", params.processors_first ? 1 : 0,
             "|cross=", params.allow_cross_pairing ? 1 : 0);
  key += cat("|noc=", params.noc.flit_width_bits, ",", params.noc.routing_latency, ",",
             params.noc.flow_control_latency, ",", report::json_number(params.noc.hop_power));
  key += "|leon=";
  append_rates(key, params.leon);
  key += "|plasma=";
  append_rates(key, params.plasma);
  return key;
}

namespace {

/// Scanner over one JSONL request line — the same strict grammar and
/// "<source>:<line>: " diagnostics as the fault-stream parser: flat
/// objects of known keys, unsigned integers and decimal numbers,
/// escape-free strings, true/false literals.
class LineScanner {
 public:
  LineScanner(std::string_view text, std::string_view source, std::size_t line)
      : text_(text), source_(source), line_(line) {}

  template <typename... Parts>
  [[noreturn]] void die(Parts&&... parts) const {
    fail(source_, ":", line_, ": ", std::forward<Parts>(parts)...);
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) ++pos_;
  }

  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c, std::string_view where) {
    if (!eat(c)) die("expected '", c, "' ", where);
  }

  [[nodiscard]] std::string_view parse_string(std::string_view what) {
    expect('"', cat("to open ", what));
    const std::size_t begin = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') die("escape sequences are not supported in ", what);
      ++pos_;
    }
    if (pos_ == text_.size()) die("unterminated string in ", what);
    return text_.substr(begin, pos_++ - begin);
  }

  [[nodiscard]] std::uint64_t parse_uint(std::string_view what) {
    skip_ws();
    const std::size_t begin = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (pos_ == begin) {
      die("expected an unsigned integer for ", what, ", got '",
          text_.substr(begin, std::min<std::size_t>(text_.size() - begin, 12)), "'");
    }
    std::uint64_t v = 0;
    for (std::size_t i = begin; i < pos_; ++i) {
      const std::uint64_t digit = static_cast<std::uint64_t>(text_[i] - '0');
      if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
        die(what, " value '", text_.substr(begin, pos_ - begin), "' is out of range");
      }
      v = v * 10 + digit;
    }
    return v;
  }

  /// Non-negative decimal number: digits with an optional ".digits"
  /// fraction (no sign, no exponent — nothing in a request needs them).
  [[nodiscard]] double parse_number(std::string_view what) {
    const std::uint64_t whole = parse_uint(what);
    double v = static_cast<double>(whole);
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const std::size_t begin = pos_;
      double scale = 1.0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        scale /= 10.0;
        v += static_cast<double>(text_[pos_] - '0') * scale;
        ++pos_;
      }
      if (pos_ == begin) die("expected digits after '.' in ", what);
    }
    return v;
  }

  [[nodiscard]] bool parse_bool(std::string_view what) {
    skip_ws();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    die("expected true or false for ", what);
  }

  void expect_end() {
    skip_ws();
    if (pos_ != text_.size()) {
      die("trailing content '", text_.substr(pos_), "' after the request object");
    }
  }

 private:
  std::string_view text_;
  std::string_view source_;
  std::size_t line_;
  std::size_t pos_ = 0;
};

/// "d695" | "p22810" | "p93791" | "rand:<seed>".
void check_soc_name(LineScanner& sc, std::string_view name) {
  for (const std::string& builtin : itc02::builtin_names()) {
    if (name == builtin) return;
  }
  if (starts_with(name, "rand:")) {
    const std::string_view seed = name.substr(5);
    const bool digits =
        !seed.empty() && std::all_of(seed.begin(), seed.end(),
                                     [](char c) { return c >= '0' && c <= '9'; });
    if (digits) return;
    sc.die("bad \"soc\" random seed in '", name, "' (expected rand:<seed>)");
  }
  sc.die("unknown \"soc\" '", name, "' (expected d695|p22810|p93791 or rand:<seed>)");
}

/// {"links": [...], "routers": [...], "procs": [...]} — the one nested
/// object the grammar admits.
void parse_faults(LineScanner& sc, FaultSpec& faults) {
  sc.expect('{', "to open \"faults\"");
  if (sc.eat('}')) return;
  do {
    const std::string_view key = sc.parse_string("a faults key");
    sc.expect(':', cat("after key \"", key, "\""));
    if (key == "links") {
      sc.expect('[', "to open \"links\"");
      if (!sc.eat(']')) {
        do {
          faults.links.emplace_back(sc.parse_string("a link"));
        } while (sc.eat(','));
        sc.expect(']', "to close \"links\"");
      }
    } else if (key == "routers") {
      sc.expect('[', "to open \"routers\"");
      if (!sc.eat(']')) {
        do {
          faults.routers.push_back(sc.parse_uint("a router id"));
        } while (sc.eat(','));
        sc.expect(']', "to close \"routers\"");
      }
    } else if (key == "procs") {
      sc.expect('[', "to open \"procs\"");
      if (!sc.eat(']')) {
        do {
          faults.procs.push_back(sc.parse_uint("a processor module id"));
        } while (sc.eat(','));
        sc.expect(']', "to close \"procs\"");
      }
    } else {
      sc.die("unknown faults key \"", key, "\" (expected links|routers|procs)");
    }
  } while (sc.eat(','));
  sc.expect('}', "to close \"faults\"");
}

}  // namespace

PlanRequest parse_request(std::string_view text, std::string_view source, std::size_t line) {
  LineScanner sc(text, source, line);
  PlanRequest req;
  req.id = cat("line-", line);
  req.origin = cat(source, ":", line);
  std::vector<std::string> seen;
  auto once = [&](std::string_view key) {
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
      sc.die("duplicate \"", key, "\" key");
    }
    seen.emplace_back(key);
  };
  sc.expect('{', "to open the request object");
  if (!sc.eat('}')) {
    do {
      const std::string key(sc.parse_string("a key"));
      sc.expect(':', cat("after key \"", key, "\""));
      once(key);
      if (key == "id") {
        req.id = std::string(sc.parse_string("\"id\""));
      } else if (key == "soc") {
        const std::string_view name = sc.parse_string("\"soc\"");
        check_soc_name(sc, name);
        req.system.soc = std::string(name);
      } else if (key == "soc_file") {
        const std::string_view path = sc.parse_string("\"soc_file\"");
        if (path.empty()) sc.die("\"soc_file\" must not be empty");
        req.system.soc_file = std::string(path);
      } else if (key == "cpu") {
        const std::string_view cpu = sc.parse_string("\"cpu\"");
        if (cpu == "leon") {
          req.system.cpu = itc02::ProcessorKind::kLeon;
        } else if (cpu == "plasma") {
          req.system.cpu = itc02::ProcessorKind::kPlasma;
        } else {
          sc.die("unknown \"cpu\" '", cpu, "' (expected leon|plasma)");
        }
      } else if (key == "procs") {
        const std::uint64_t procs = sc.parse_uint("\"procs\"");
        if (procs > 64) sc.die("\"procs\" ", procs, " is out of range (at most 64)");
        req.system.procs = static_cast<int>(procs);
      } else if (key == "wrapper") {
        const std::uint64_t w = sc.parse_uint("\"wrapper\"");
        if (w == 0 || w > 1024) sc.die("\"wrapper\" must be in [1, 1024], got ", w);
        req.system.params.wrapper_chains = static_cast<std::uint32_t>(w);
      } else if (key == "policy") {
        const std::string_view p = sc.parse_string("\"policy\"");
        if (p == "longest") {
          req.system.params.priority = core::PriorityPolicy::kLongestTestFirst;
        } else if (p == "distance") {
          req.system.params.priority = core::PriorityPolicy::kDistanceFirst;
        } else if (p == "shortest") {
          req.system.params.priority = core::PriorityPolicy::kShortestTestFirst;
        } else {
          sc.die("unknown \"policy\" '", p, "' (expected longest|distance|shortest)");
        }
      } else if (key == "choice") {
        const std::string_view c = sc.parse_string("\"choice\"");
        if (c == "greedy") {
          req.system.params.resource_choice = core::ResourceChoice::kFirstAvailable;
        } else if (c == "earliest") {
          req.system.params.resource_choice = core::ResourceChoice::kEarliestCompletion;
        } else {
          sc.die("unknown \"choice\" '", c, "' (expected greedy|earliest)");
        }
      } else if (key == "mesh") {
        const std::string_view mesh = sc.parse_string("\"mesh\"");
        const auto parts = split(mesh, 'x');
        if (parts.size() != 2 || parts[0].empty() || parts[1].empty()) {
          sc.die("\"mesh\" expects CxR, e.g. 4x4, got '", mesh, "'");
        }
        req.system.mesh_cols = static_cast<int>(parse_u64(parts[0], "\"mesh\" cols"));
        req.system.mesh_rows = static_cast<int>(parse_u64(parts[1], "\"mesh\" rows"));
        if (req.system.mesh_cols == 0 || req.system.mesh_rows == 0) {
          sc.die("\"mesh\" dimensions must be positive, got '", mesh, "'");
        }
      } else if (key == "power") {
        const double pct = sc.parse_number("\"power\"");
        if (!(pct > 0.0 && pct <= 100.0)) {
          sc.die("\"power\" must be in (0, 100], got ", pct);
        }
        req.power_pct = pct;
      } else if (key == "search") {
        const std::string_view s = sc.parse_string("\"search\"");
        if (s == "restart") {
          req.strategy = search::StrategyKind::kRestart;
        } else if (s == "anneal") {
          req.strategy = search::StrategyKind::kAnneal;
        } else if (s == "local") {
          req.strategy = search::StrategyKind::kLocal;
        } else {
          sc.die("unknown \"search\" strategy '", s, "' (expected restart|anneal|local)");
        }
      } else if (key == "iters") {
        req.iters = sc.parse_uint("\"iters\"");
      } else if (key == "seed") {
        req.seed = sc.parse_uint("\"seed\"");
      } else if (key == "simulate") {
        req.simulate = sc.parse_bool("\"simulate\"");
      } else if (key == "faults") {
        parse_faults(sc, req.faults);
      } else {
        sc.die("unknown key \"", key,
               "\" (expected id|soc|soc_file|cpu|procs|wrapper|policy|choice|mesh|"
               "power|search|iters|seed|simulate|faults)");
      }
    } while (sc.eat(','));
    sc.expect('}', "to close the request object");
  }
  sc.expect_end();
  if (req.simulate && !req.faults.empty()) {
    sc.die("\"simulate\" cannot be combined with \"faults\" (fault requests already "
           "classify the degraded plan)");
  }
  return req;
}

}  // namespace nocsched::engine
