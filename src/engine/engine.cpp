#include "engine/engine.hpp"

#include <exception>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "core/scheduler.hpp"
#include "des/replay.hpp"
#include "noc/fault.hpp"
#include "obs/clock.hpp"
#include "obs/trace.hpp"
#include "power/budget.hpp"
#include "search/driver.hpp"
#include "search/replan.hpp"
#include "sim/validate.hpp"

namespace nocsched::engine {

namespace {

/// Resolve a request's raw fault references against the built system.
/// Range checks run on the parsed 64-bit values before any narrowing —
/// a huge id must be rejected, never truncated into a plausible one.
noc::FaultSet resolve_faults(const FaultSpec& spec, const core::SystemModel& sys) {
  auto check_router = [&](std::uint64_t r, std::string_view what) {
    ensure(r < static_cast<std::uint64_t>(sys.mesh().router_count()), what, ": no router ", r,
           " (mesh has ", sys.mesh().router_count(), " routers)");
    return static_cast<noc::RouterId>(r);
  };
  noc::FaultSet faults;
  for (const std::string& link : spec.links) {
    const auto ends = split(link, ':');
    ensure(ends.size() == 2, "faults.links entries are FROM:TO router pairs, got '", link,
           "'");
    const noc::RouterId from = check_router(parse_u64(ends[0], "faults.links"), "faults.links");
    const noc::RouterId to = check_router(parse_u64(ends[1], "faults.links"), "faults.links");
    ensure(sys.mesh().hop_count(from, to) == 1, "faults.links: routers ", from, " and ", to,
           " are not adjacent (channels join mesh neighbours only)");
    faults.fail_channel(sys.mesh().channel_between(from, to));
  }
  for (const std::uint64_t r : spec.routers) {
    faults.fail_router(check_router(r, "faults.routers"));
  }
  for (const std::uint64_t raw : spec.procs) {
    ensure(raw >= 1 && raw <= sys.soc().modules.size(), "faults.procs: no module ", raw);
    const int id = static_cast<int>(raw);
    ensure(sys.soc().module(id).is_processor, "faults.procs: module ", id, " ('",
           sys.soc().module(id).name, "') is not a processor");
    faults.fail_processor(id);
  }
  return faults;
}

search::SearchOptions search_options(const PlanRequest& request) {
  search::SearchOptions opts;
  opts.strategy = request.strategy.value_or(search::StrategyKind::kRestart);
  opts.iters = request.searching() ? request.iters.value_or(256) : 0;
  opts.seed = request.seed;
  // Defaults to one thread per request: batch parallelism runs whole
  // requests on the work queue, and search results are bit-identical
  // at any job count anyway, so nesting thread pools would buy bytes
  // nothing.  The one-shot CLI adapter raises it (one request, many
  // cores).
  opts.jobs = request.search_jobs;
  return opts;
}

}  // namespace

Engine::Engine(const EngineOptions& options)
    : options_(options), cache_(options.cache_capacity) {}

PlanResult Engine::execute(const PlanRequest& request, const ContextCache::SlotHandle& slot) {
  PlanResult res;
  res.id = request.id;
  try {
    const ContextCache::Handle ctx = [&] {
      // The span keeps the CLI's pre-engine phase names: "parse" covers
      // everything between argv and a plannable system (near-zero on a
      // cache hit — exactly the amortization the cache exists for).
      const obs::Span span("parse");
      return cache_.context(slot);
    }();
    const core::SystemModel& sys = ctx->system();
    const power::PowerBudget budget =
        request.power_pct
            ? power::PowerBudget::fraction_of_total(sys.soc(), *request.power_pct / 100.0)
            : power::PowerBudget::unconstrained();
    const search::SearchOptions sopts = search_options(request);

    if (!request.faults.empty()) {
      const noc::FaultSet faults = resolve_faults(request.faults, sys);
      const obs::Span span("plan");
      search::ReplanResult replanned =
          search::replan(sys, budget, faults, sopts, ctx->pristine_pairs());
      sim::validate_or_throw(sys, replanned.schedule, faults);
      res.schedule = std::move(replanned.schedule);
      res.faulted = true;
      res.dead_modules = std::move(replanned.dead_modules);
      res.untestable_modules = std::move(replanned.untestable_modules);
      res.pairs_rebuilt = replanned.pairs_rebuilt;
      if (request.searching()) res.search_metrics = std::move(replanned.metrics);
    } else if (request.searching()) {
      const obs::Span span("plan");
      // The cached scaffold *is* the unconstrained-budget context; a
      // power-limited request derives its own from a copy of the cached
      // pristine table (the cheap part — the table build is skipped).
      search::SearchResult result =
          budget.is_constrained()
              ? search::search_orders(
                    search::EvalContext(sys, budget, core::PairTable(ctx->pristine_pairs())),
                    sopts)
              : search::search_orders(ctx->scaffold(), sopts);
      sim::validate_or_throw(sys, result.best);
      res.schedule = std::move(result.best);
      res.search_metrics = std::move(result.metrics);
    } else {
      const obs::Span span("plan");
      res.schedule = core::plan_tests_with_order(sys, budget, ctx->scaffold().base_order(),
                                                 ctx->pristine_pairs());
      sim::validate_or_throw(sys, res.schedule);
    }

    if (request.simulate) {
      res.trace = des::replay(sys, res.schedule);
      res.cross_check = [&] {
        const obs::Span span("cross_check");
        return sim::cross_check(sys, res.schedule, *res.trace);
      }();
    }
    res.context = ctx;
    res.ok = true;
  } catch (const std::exception& e) {
    res = PlanResult{};
    res.id = request.id;
    res.error = request.origin.empty() ? std::string(e.what())
                                       : cat(request.origin, ": ", e.what());
  }
  return res;
}

PlanResult Engine::run(const PlanRequest& request) {
  const ContextCache::SlotHandle slot = cache_.reserve(request.system);
  obs::MetricsRegistry& reg = obs::registry();
  if (!reg.enabled()) return execute(request, slot);
  const double start_ms = obs::now_ms();
  PlanResult res = execute(request, slot);
  reg.histogram("wall.serve.request_us",
                {100, 300, 1000, 3000, 10000, 30000, 100000, 300000, 1000000})
      .observe(static_cast<std::uint64_t>((obs::now_ms() - start_ms) * 1000.0));
  return res;
}

std::vector<PlanResult> Engine::run_batch(const std::vector<PlanRequest>& requests) {
  // Phase 1, serial in request order: reserve every slot.  Recency and
  // eviction become a pure function of the request sequence, no matter
  // how the parallel phase below interleaves.
  std::vector<ContextCache::SlotHandle> slots;
  slots.reserve(requests.size());
  for (const PlanRequest& request : requests) slots.push_back(cache_.reserve(request.system));
  // Phase 2, parallel: whole requests on the work queue.  Missing
  // contexts are built once (call_once per slot) by whichever worker
  // arrives first; every result is a pure function of its request.
  std::vector<PlanResult> results(requests.size());
  const bool collect = obs::registry().enabled();
  parallel_for(requests.size(), options_.jobs, [&](std::size_t i) {
    if (!collect) {
      results[i] = execute(requests[i], slots[i]);
      return;
    }
    const double start_ms = obs::now_ms();
    results[i] = execute(requests[i], slots[i]);
    obs::registry()
        .histogram("wall.serve.request_us",
                   {100, 300, 1000, 3000, 10000, 30000, 100000, 300000, 1000000})
        .observe(static_cast<std::uint64_t>((obs::now_ms() - start_ms) * 1000.0));
  });
  return results;
}

}  // namespace nocsched::engine
