#include "engine/context_cache.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "core/placement.hpp"
#include "itc02/builtin.hpp"
#include "itc02/parser.hpp"
#include "itc02/random_soc.hpp"
#include "obs/metrics.hpp"
#include "power/budget.hpp"

namespace nocsched::engine {

core::SystemModel build_system(const SystemSpec& spec) {
  if (spec.soc_file.empty() && !starts_with(spec.soc, "rand:")) {
    return core::SystemModel::paper_system(spec.soc, spec.cpu, spec.procs, spec.params);
  }
  itc02::Soc soc = [&] {
    if (!spec.soc_file.empty()) return itc02::load_file(spec.soc_file);
    // "rand:<seed>": the property suites' generator, on a dedicated
    // stream so a request seed never collides with a search seed.
    Rng rng = stream_rng(parse_u64(std::string_view(spec.soc).substr(5), "soc seed"), 0x50C);
    return itc02::random_soc(rng);
  }();
  soc = itc02::with_processors(std::move(soc), spec.cpu, spec.procs);
  noc::Mesh mesh = spec.mesh_cols > 0 ? noc::Mesh(spec.mesh_cols, spec.mesh_rows)
                                      : [&] {
                                          // Smallest square mesh that fits one
                                          // module per router where possible.
                                          int side = 1;
                                          while (side * side <
                                                 static_cast<int>(soc.modules.size())) {
                                            ++side;
                                          }
                                          return noc::Mesh(side, side);
                                        }();
  auto placement = core::default_placement(soc, mesh);
  const noc::RouterId in = core::default_ate_input(mesh);
  const noc::RouterId out = core::default_ate_output(mesh);
  return core::SystemModel(std::move(soc), std::move(mesh), std::move(placement), in, out,
                           spec.params);
}

PlanContext::PlanContext(const SystemSpec& spec)
    : spec_(spec),
      key_(spec.cache_key()),
      sys_(std::make_unique<const core::SystemModel>(build_system(spec))),
      scaffold_(std::make_unique<const search::EvalContext>(
          *sys_, power::PowerBudget::unconstrained())) {}

ContextCache::ContextCache(std::size_t capacity) : capacity_(capacity) {
  ensure(capacity_ > 0, "ContextCache: capacity must be at least 1");
}

ContextCache::SlotHandle ContextCache::reserve(const SystemSpec& spec) {
  std::string key = spec.cache_key();
  const std::lock_guard<std::mutex> lock(mutex_);
  obs::MetricsRegistry& reg = obs::registry();
  const auto it = slots_.find(key);
  if (it != slots_.end()) {
    it->second->seq = ++seq_;
    ++stats_.hits;
    if (reg.enabled()) reg.counter("serve.cache.hits").inc();
    return it->second;
  }
  auto slot = std::make_shared<Slot>();
  slot->spec = spec;
  slot->key = key;
  slot->seq = ++seq_;
  slots_.emplace(std::move(key), slot);
  ++stats_.misses;
  if (reg.enabled()) reg.counter("serve.cache.misses").inc();
  while (slots_.size() > capacity_) {
    // Evict the least-recently reserved slot.  In-flight holders keep
    // the context alive through their shared_ptr; the cache just stops
    // vending it.
    auto victim = slots_.begin();
    for (auto cand = slots_.begin(); cand != slots_.end(); ++cand) {
      if (cand->second->seq < victim->second->seq) victim = cand;
    }
    slots_.erase(victim);
    ++stats_.evictions;
    if (reg.enabled()) reg.counter("serve.cache.evictions").inc();
  }
  return slot;
}

ContextCache::Handle ContextCache::context(const SlotHandle& slot) {
  ensure(slot != nullptr, "ContextCache::context: null slot");
  std::call_once(slot->once, [&] { slot->context = std::make_shared<const PlanContext>(slot->spec); });
  return slot->context;
}

ContextCache::Handle ContextCache::acquire(const SystemSpec& spec) {
  return context(reserve(spec));
}

ContextCache::Stats ContextCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ContextCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

std::vector<std::string> ContextCache::keys_by_recency() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::uint64_t, std::string>> order;
  order.reserve(slots_.size());
  for (const auto& [key, slot] : slots_) order.emplace_back(slot->seq, key);
  std::sort(order.begin(), order.end());
  std::vector<std::string> keys;
  keys.reserve(order.size());
  for (auto& [seq, key] : order) keys.push_back(std::move(key));
  return keys;
}

}  // namespace nocsched::engine
