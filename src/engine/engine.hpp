#pragma once
// The run pipeline as a reusable component: parse/build (cached) →
// search/plan → validate → optional DES replay, for one PlanRequest or
// a batch of them.
//
// Determinism contract: a PlanResult is a pure function of its
// PlanRequest.  Context artifacts are pure functions of the SystemSpec
// (shared, immutable), per-request search runs single-threaded inside
// the request (batch parallelism comes from running whole requests on
// common/parallel workers), and nothing about cache hits, batch
// composition, or worker count reaches the result bytes — asserted by
// tests/engine/ and bench/serve_fleet.  Cache hit/miss activity is
// visible only through the obs layer (serve.cache.* counters,
// wall.serve.* timers), which is quarantined from byte-stable outputs.
//
// The CLI's one-shot modes are thin adapters over Engine::run; --serve
// drives Engine::run_batch from a JSONL loop (engine/serve.hpp).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "des/trace.hpp"
#include "engine/context_cache.hpp"
#include "engine/request.hpp"
#include "obs/metrics.hpp"
#include "sim/cross_check.hpp"

namespace nocsched::engine {

struct EngineOptions {
  std::size_t cache_capacity = 32;  ///< PlanContexts kept (LRU beyond that)
  unsigned jobs = 0;  ///< batch workers (0 = one per hardware thread)
};

struct PlanResult {
  std::string id;
  bool ok = false;
  std::string error;  ///< set when !ok, "<source>:<line>: " prefixed for serve requests
  /// The context the schedule refers to (system, endpoints, names);
  /// null when !ok.  Shared with the cache — treat as immutable.
  ContextCache::Handle context;
  core::Schedule schedule;
  /// Search record (search.* names), set only when the request searched.
  std::optional<obs::MetricsSnapshot> search_metrics;
  bool faulted = false;              ///< request carried faults (replan semantics)
  std::vector<int> dead_modules;     ///< failed processors (fault requests)
  std::vector<int> untestable_modules;  ///< coverage lost (fault requests)
  std::size_t pairs_rebuilt = 0;     ///< pair lists re-enumerated incrementally
  std::optional<des::SimTrace> trace;             ///< simulate requests
  std::optional<sim::CrossCheckReport> cross_check;  ///< simulate requests
};

class Engine {
 public:
  explicit Engine(const EngineOptions& options = {});

  /// Execute one request.  Failures (bad spec, unreadable file, fault
  /// references that don't resolve) come back as ok == false with the
  /// diagnostic in `error` — never an exception, so one bad request in
  /// a stream cannot take the server down.
  [[nodiscard]] PlanResult run(const PlanRequest& request);

  /// Execute a batch: results[i] answers requests[i].  Cache slots are
  /// reserved serially in request order (deterministic eviction), then
  /// requests run on the parallel work queue; contexts missing from the
  /// cache are built once by whichever worker gets there first.
  [[nodiscard]] std::vector<PlanResult> run_batch(const std::vector<PlanRequest>& requests);

  /// The shared context for a spec (building or cache-hitting): the
  /// CLI's fault sweep/stream modes and the benches read the system and
  /// pristine table through this instead of rebuilding their own.
  [[nodiscard]] ContextCache::Handle context(const SystemSpec& spec) {
    return cache_.acquire(spec);
  }

  [[nodiscard]] ContextCache& cache() { return cache_; }

 private:
  [[nodiscard]] PlanResult execute(const PlanRequest& request,
                                   const ContextCache::SlotHandle& slot);

  EngineOptions options_;
  ContextCache cache_;
};

}  // namespace nocsched::engine
