#pragma once
// The plan server: a long-lived loop reading JSONL PlanRequests and
// emitting JSONL PlanResults, one object per line, in input order.
//
// Malformed lines become per-request error objects ({"id": ...,
// "ok": false, "error": "<source>:<line>: ..."}) — the process never
// dies on bad input.  Requests are executed in batches through
// Engine::run_batch, so result bytes are independent of batch size,
// cache state, and worker count (the engine's determinism contract).
// Instrumented through the obs layer under serve.* (requests, results,
// errors, batches, cache hits/misses/evictions) with wall time in the
// wall.serve.* namespace, which the byte-stable outputs drop.

#include <cstddef>
#include <iosfwd>
#include <string>

#include "engine/engine.hpp"

namespace nocsched::engine {

struct ServeOptions {
  std::size_t batch = 64;           ///< requests executed per engine batch
  std::size_t cache_capacity = 32;  ///< PlanContexts kept across requests
  unsigned jobs = 0;                ///< batch workers (0 = hardware threads)
  std::string source = "stdin";     ///< name in diagnostics ("<source>:<line>: ...")
};

/// One result line (no trailing newline): the ok object or the error
/// object, depending on result.ok.  Deterministic fields only — cache
/// and timing activity never reaches result bytes.
[[nodiscard]] std::string result_json(const PlanResult& result);

/// The error-object form for a line that failed before reaching the
/// engine (parse errors).
[[nodiscard]] std::string error_json(const std::string& id, const std::string& message);

/// Serve until EOF on `in`.  Returns 0; per-request failures are
/// reported in-band as error objects.
int serve(std::istream& in, std::ostream& out, const ServeOptions& options);

}  // namespace nocsched::engine
