#pragma once
// Keyed cache of immutable shared planning artifacts.
//
// Building a system is the expensive part of serving a plan: parse (or
// generate) the SoC, characterize wrappers and routes, and price every
// (source, sink) pair into a PairTable.  All of it is a pure function
// of the SystemSpec, so requests naming the same spec share one
// PlanContext — the paper's amortization idea applied to the planner
// itself.  Per-request state (power budget, faults, search effort) is
// derived from the cached artifacts without mutating them: faulted
// tables via a copy + PairTable::apply_faults, budget-specific search
// scaffolding via a copy of the pristine table (EvalContext's
// pristine-table constructor).
//
// Determinism: eviction is LRU over a monotonic reservation counter —
// a pure function of the reserve() call sequence.  The engine's batch
// driver reserves serially in request order and only materializes
// (builds) in parallel, so the cache's contents after a batch depend
// on nothing but the request sequence.  Handles are shared_ptrs: an
// evicted context stays alive for requests still holding it.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/pair_table.hpp"
#include "core/system_model.hpp"
#include "engine/request.hpp"
#include "search/eval_context.hpp"

namespace nocsched::engine {

/// One cached bundle: the built system, its unconstrained-budget search
/// scaffolding (which owns the pristine PairTable), and the spec that
/// produced them.  Immutable after construction; vend by const
/// reference or shared_ptr-to-const only (lint rule D4 covers this type
/// exactly like PairTable and EvalContext).
class PlanContext {
 public:
  explicit PlanContext(const SystemSpec& spec);

  [[nodiscard]] const SystemSpec& spec() const { return spec_; }
  [[nodiscard]] const std::string& key() const { return key_; }
  [[nodiscard]] const core::SystemModel& system() const { return *sys_; }
  /// Unconstrained-budget scaffolding: base priority order, tiers,
  /// eligibility — budget-independent, so any request can read them.
  [[nodiscard]] const search::EvalContext& scaffold() const { return *scaffold_; }
  /// The pristine (fault-free) PairTable; copy it before degrading.
  [[nodiscard]] const core::PairTable& pristine_pairs() const {
    return scaffold_->pair_table();
  }

 private:
  SystemSpec spec_;
  std::string key_;
  std::unique_ptr<const core::SystemModel> sys_;  ///< address-stable: scaffold_ refers to it
  std::unique_ptr<const search::EvalContext> scaffold_;
};

/// Build the SystemModel a spec names (builtin, .soc file, or seeded
/// random SoC) — the single system-construction path shared by the
/// engine, the CLI, and the benches.
[[nodiscard]] core::SystemModel build_system(const SystemSpec& spec);

class ContextCache {
 public:
  using Handle = std::shared_ptr<const PlanContext>;

  /// One cache slot: reserved serially (deterministic recency and
  /// eviction), built at most once (call_once), shared by every request
  /// naming the same key.
  struct Slot {
    SystemSpec spec;
    std::string key;
    std::uint64_t seq = 0;  ///< last reservation, the LRU recency stamp
    std::once_flag once;
    Handle context;  ///< set exactly once, under `once`
  };
  using SlotHandle = std::shared_ptr<Slot>;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  explicit ContextCache(std::size_t capacity);

  /// Find-or-insert the slot for `spec`, touch its recency, and evict
  /// the least-recently reserved slot while over capacity.  Cheap (no
  /// building) and mutex-serialized; callers wanting deterministic
  /// eviction must serialize their reserve() order themselves (the
  /// engine reserves a whole batch in request order before any build).
  [[nodiscard]] SlotHandle reserve(const SystemSpec& spec);

  /// The built context for a reserved slot, building it on first use.
  /// Thread-safe: concurrent callers of the same slot build once and
  /// share the result.  A build failure propagates to every concurrent
  /// caller and is retried on the next materialize (errors are
  /// deterministic, so retrying reproduces the same diagnostic).
  [[nodiscard]] Handle context(const SlotHandle& slot);

  /// reserve + context in one step.
  [[nodiscard]] Handle acquire(const SystemSpec& spec);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Cached keys, least-recently reserved first — the eviction order
  /// the determinism tests pin down.
  [[nodiscard]] std::vector<std::string> keys_by_recency() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::uint64_t seq_ = 0;
  std::map<std::string, SlotHandle> slots_;
  Stats stats_;
};

}  // namespace nocsched::engine
