#include "engine/serve.hpp"

#include <exception>
#include <istream>
#include <ostream>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "report/json_util.hpp"

namespace nocsched::engine {

std::string result_json(const PlanResult& result) {
  if (!result.ok) return error_json(result.id, result.error);
  std::string out = cat("{\"id\": ", report::json_string(result.id), ", \"ok\": true");
  out += cat(", \"soc\": ", report::json_string(result.context->system().soc().name));
  out += cat(", \"makespan\": ", result.schedule.makespan);
  out += cat(", \"peak_power\": ", report::json_number(result.schedule.peak_power));
  out += cat(", \"sessions\": ", result.schedule.sessions.size());
  if (result.search_metrics) {
    const obs::MetricsSnapshot& m = *result.search_metrics;
    out += cat(", \"search\": {\"strategy\": ", report::json_string(m.info_or("search.strategy")),
               ", \"evaluations\": ", m.counter_or("search.evaluations"),
               ", \"first_makespan\": ", m.gauge_or("search.first_makespan"),
               ", \"best_makespan\": ", m.gauge_or("search.best_makespan"), "}");
  }
  if (result.faulted) {
    auto id_list = [](const std::vector<int>& ids) {
      std::string list = "[";
      for (std::size_t i = 0; i < ids.size(); ++i) {
        list += cat(ids[i], i + 1 < ids.size() ? ", " : "");
      }
      return list + "]";
    };
    out += cat(", \"dead\": ", id_list(result.dead_modules),
               ", \"untestable\": ", id_list(result.untestable_modules),
               ", \"pairs_rebuilt\": ", result.pairs_rebuilt);
  }
  if (result.cross_check) {
    out += cat(", \"observed_makespan\": ", result.cross_check->observed_makespan,
               ", \"cross_check_ok\": ", result.cross_check->ok() ? "true" : "false");
  }
  out += "}";
  return out;
}

std::string error_json(const std::string& id, const std::string& message) {
  return cat("{\"id\": ", report::json_string(id), ", \"ok\": false, \"error\": ",
             report::json_string(message), "}");
}

int serve(std::istream& in, std::ostream& out, const ServeOptions& options) {
  ensure(options.batch > 0, "serve: batch size must be at least 1");
  Engine engine(EngineOptions{options.cache_capacity, options.jobs});
  obs::MetricsRegistry& reg = obs::registry();

  // One queued input line: a parsed request (by batch index) or a
  // ready-to-emit parse-error object.  Output order is input order.
  struct Item {
    std::size_t index = 0;  ///< into the batch's request vector
    std::string error_line;  ///< non-empty: emit this instead
  };
  std::vector<PlanRequest> requests;
  std::vector<Item> items;

  auto flush = [&] {
    if (items.empty()) return;
    const bool collect = reg.enabled();
    const double start_ms = collect ? obs::now_ms() : 0.0;
    const std::vector<PlanResult> results = engine.run_batch(requests);
    for (const Item& item : items) {
      if (!item.error_line.empty()) {
        out << item.error_line << "\n";
      } else {
        const PlanResult& result = results[item.index];
        if (collect && !result.ok) reg.counter("serve.request_errors").inc();
        out << result_json(result) << "\n";
      }
    }
    out.flush();
    if (collect) {
      reg.counter("serve.batches").inc();
      reg.counter("serve.results").add(items.size());
      reg.set_wall_ms("wall.serve.last_batch_ms", obs::now_ms() - start_ms);
    }
    requests.clear();
    items.clear();
  };

  std::string raw;
  std::size_t line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const std::string_view text = trim(raw);
    if (text.empty()) continue;
    if (reg.enabled()) reg.counter("serve.requests").inc();
    Item item;
    try {
      PlanRequest request = parse_request(text, options.source, line);
      item.index = requests.size();
      requests.push_back(std::move(request));
    } catch (const std::exception& e) {
      if (reg.enabled()) reg.counter("serve.parse_errors").inc();
      item.error_line = error_json(cat("line-", line), e.what());
    }
    items.push_back(std::move(item));
    if (items.size() >= options.batch) flush();
  }
  flush();
  return 0;
}

}  // namespace nocsched::engine
