#pragma once
// The plan-server's value model: what one planning request asks for.
//
// A PlanRequest is a pure value — everything the Engine needs to
// produce a result is in it, so a result is a pure function of the
// request (bit-identical regardless of batch order, cache state, or
// worker count; asserted by tests/engine/).  The SystemSpec part names
// the shared artifacts (parsed SoC, characterized wrappers, priced
// PairTable) and is the ContextCache key; the rest (power budget,
// search effort, faults) is per-request and derived cheaply from the
// cached artifacts.
//
// parse_request reads the JSONL wire form used by `nocsched_cli
// --serve` — one flat-ish object per line, strict grammar, every
// diagnostic prefixed "<source>:<line>: " (the same discipline as
// search::parse_fault_stream).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/params.hpp"
#include "itc02/soc.hpp"
#include "search/strategy.hpp"

namespace nocsched::engine {

/// Names one buildable system: the cacheable, request-independent part
/// of a PlanRequest.  Two requests with equal cache_key()s share one
/// PlanContext (SystemModel + pristine PairTable + search scaffolding).
struct SystemSpec {
  /// Built-in SoC name (d695 | p22810 | p93791) or "rand:<seed>" for a
  /// seeded random SoC (itc02::random_soc); ignored when soc_file is set.
  std::string soc = "d695";
  std::string soc_file;  ///< ITC'02-style .soc file; overrides `soc`
  itc02::ProcessorKind cpu = itc02::ProcessorKind::kLeon;
  int procs = 2;  ///< reused processors appended to the SoC
  int mesh_cols = 0;  ///< 0 = smallest square mesh (soc_file/rand systems)
  int mesh_rows = 0;
  core::PlannerParams params = core::PlannerParams::paper();

  /// Canonical cache key: every field that changes the built system —
  /// including every PlannerParams scalar, since policy, wrapper width,
  /// and characterized rates are baked into the cached artifacts.
  [[nodiscard]] std::string cache_key() const;
};

/// Raw fault references, resolved against the built system at execution
/// time (router adjacency and module kinds are unknown until then).
struct FaultSpec {
  std::vector<std::string> links;        ///< "FROM:TO" adjacent router pairs
  std::vector<std::uint64_t> routers;    ///< whole routers
  std::vector<std::uint64_t> procs;      ///< processor module ids
  [[nodiscard]] bool empty() const {
    return links.empty() && routers.empty() && procs.empty();
  }
};

struct PlanRequest {
  std::string id;      ///< echoed in the result; parse defaults to "line-<n>"
  std::string origin;  ///< "<source>:<line>" prefixed to execution errors; may be empty
  SystemSpec system;
  std::optional<double> power_pct;  ///< peak power limit in percent of total
  std::optional<search::StrategyKind> strategy;
  std::optional<std::uint64_t> iters;
  std::uint64_t seed = 0x5EED;
  /// Threads for the search inside this one request (0 = hardware
  /// threads).  Defaults to 1: a batched server gets its parallelism
  /// from running whole requests on the work queue, and search results
  /// are bit-identical at any job count, so this only moves wall time.
  /// The CLI's one-shot adapter sets it from --jobs; not on the wire.
  unsigned search_jobs = 1;
  FaultSpec faults;     ///< non-empty: plan the degraded system (replan semantics)
  bool simulate = false;  ///< replay the plan on the DES and cross-check

  /// Search runs when either knob is given (the CLI's --search/--iters
  /// convention); otherwise the deterministic greedy pass is the plan.
  [[nodiscard]] bool searching() const {
    return strategy.has_value() || iters.has_value();
  }
};

/// Parse one JSONL request line.  Accepted keys:
///   "id" (string), "soc" (string), "soc_file" (string),
///   "cpu" ("leon"|"plasma"), "procs" (uint), "wrapper" (uint),
///   "policy" ("longest"|"distance"|"shortest"),
///   "choice" ("greedy"|"earliest"), "mesh" ("CxR"),
///   "power" (number in (0, 100]), "search" ("restart"|"anneal"|"local"),
///   "iters" (uint), "seed" (uint), "simulate" (true|false),
///   "faults" ({"links": [..], "routers": [..], "procs": [..]})
/// Throws nocsched::Error with a "<source>:<line>: " prefix on any
/// violation — unknown or duplicate keys, an unknown SoC, an
/// out-of-range power, malformed JSON.
[[nodiscard]] PlanRequest parse_request(std::string_view text, std::string_view source,
                                        std::size_t line);

}  // namespace nocsched::engine
