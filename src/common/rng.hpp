#pragma once
// Deterministic pseudo-random number generation.
//
// Every randomized component in this repository (synthetic SoC
// generation, property tests, workload perturbation) draws from this
// generator so results are reproducible from a seed alone, independent
// of the standard library's distribution implementations.

#include <cstdint>
#include <vector>

namespace nocsched {

/// xoshiro256** with SplitMix64 seeding.  Deterministic across
/// platforms; not cryptographic.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform integer in [0, n).  Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli draw with probability p of true.
  bool chance(double p);

  /// Geometric-flavoured "mostly small, occasionally large" integer in
  /// [lo, hi]: used for realistic core-size distributions where a few
  /// large cores dominate.
  std::uint64_t skewed(std::uint64_t lo, std::uint64_t hi, double shape = 2.5);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// RNG for stream `index` of a family seeded with `seed`: SplitMix-style
/// golden-ratio stepping keeps the streams separated, and the state
/// depends only on (seed, index) — never on thread or iteration order.
/// One definition serves search chains, fault sweeps, and benches, so
/// "scenario k of seed s" means the same thing everywhere.
[[nodiscard]] inline Rng stream_rng(std::uint64_t seed, std::uint64_t index) {
  return Rng(seed + 0x9E3779B97F4A7C15ULL * (index + 1));
}

}  // namespace nocsched
