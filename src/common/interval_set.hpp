#pragma once
// Sorted set of disjoint half-open time intervals [start, end).
//
// Used by the NoC channel reservation tables and the power profile: a
// test session reserves each directed channel on its two XY paths for
// its whole duration, and the scheduler must query conflicts cheaply.

#include <cstdint>
#include <vector>

namespace nocsched {

/// Half-open interval of simulation cycles.
struct Interval {
  std::uint64_t start = 0;
  std::uint64_t end = 0;  // exclusive; must satisfy end >= start

  [[nodiscard]] bool empty() const { return end <= start; }
  [[nodiscard]] std::uint64_t length() const { return end - start; }
  [[nodiscard]] bool overlaps(const Interval& o) const {
    return start < o.end && o.start < end;
  }
  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Maintains disjoint intervals sorted by start time.
///
/// Insertion of an overlapping interval is rejected (the caller must
/// query first); adjacent intervals are kept separate so the number of
/// distinct reservations stays observable for utilization statistics.
class IntervalSet {
 public:
  /// True if `iv` overlaps any stored interval.
  [[nodiscard]] bool conflicts(const Interval& iv) const;

  /// Insert a non-empty interval; throws nocsched::Error on overlap.
  void insert(const Interval& iv);

  /// Earliest time >= `from` at which an interval of length `len` fits.
  [[nodiscard]] std::uint64_t earliest_fit(std::uint64_t from, std::uint64_t len) const;

  /// Total reserved cycles within [0, horizon).
  [[nodiscard]] std::uint64_t occupied_until(std::uint64_t horizon) const;

  [[nodiscard]] std::size_t size() const { return ivs_.size(); }
  [[nodiscard]] bool empty() const { return ivs_.empty(); }
  [[nodiscard]] const std::vector<Interval>& intervals() const { return ivs_; }
  void clear() { ivs_.clear(); }

 private:
  std::vector<Interval> ivs_;  // sorted by start, pairwise disjoint
};

}  // namespace nocsched
