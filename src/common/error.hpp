#pragma once
// Error handling utilities shared by every nocsched library.
//
// The libraries throw `nocsched::Error` (a std::runtime_error) for all
// recoverable failures: malformed benchmark files, infeasible scheduling
// inputs, out-of-range queries.  Programming errors (violated
// preconditions inside the library itself) use NOCSCHED_ASSERT, which is
// active in every build type.

#include <sstream>
#include <stdexcept>
#include <string>

namespace nocsched {

/// Exception type thrown by all nocsched libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

inline void cat_into(std::ostringstream&) {}

template <typename T, typename... Rest>
void cat_into(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  cat_into(os, rest...);
}

}  // namespace detail

/// Concatenate any streamable values into a std::string.
/// libstdc++ 12 has no <format>, so this is the formatting workhorse.
template <typename... Args>
[[nodiscard]] std::string cat(const Args&... args) {
  std::ostringstream os;
  detail::cat_into(os, args...);
  return os.str();
}

/// Throw nocsched::Error with a concatenated message.
template <typename... Args>
[[noreturn]] void fail(const Args&... args) {
  throw Error(cat(args...));
}

/// Throw nocsched::Error with message `args...` unless `cond` holds.
template <typename... Args>
void ensure(bool cond, const Args&... args) {
  if (!cond) fail(args...);
}

[[noreturn]] void assert_failed(const char* expr, const char* file, int line);

}  // namespace nocsched

/// Precondition check that stays on in release builds; use for internal
/// invariants whose violation means a bug in this library, not bad input.
#define NOCSCHED_ASSERT(expr) \
  ((expr) ? static_cast<void>(0) : ::nocsched::assert_failed(#expr, __FILE__, __LINE__))
