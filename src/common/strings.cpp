#include "common/strings.hpp"

#include <cctype>
#include <charconv>

#include "common/error.hpp"

namespace nocsched {

namespace {
bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t b = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > b) out.push_back(s.substr(b, i - b));
  }
  return out;
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t b = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(b, i - b));
      b = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::uint64_t parse_u64(std::string_view s, std::string_view what) {
  s = trim(s);
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  ensure(ec == std::errc() && ptr == s.data() + s.size() && !s.empty(),
         "expected a non-negative integer for ", what, ", got '", std::string(s), "'");
  return v;
}

double parse_double(std::string_view s, std::string_view what) {
  s = trim(s);
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  ensure(ec == std::errc() && ptr == s.data() + s.size() && !s.empty(),
         "expected a number for ", what, ", got '", std::string(s), "'");
  return v;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace nocsched
