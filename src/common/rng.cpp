#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace nocsched {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
  // All-zero state would lock xoshiro at zero forever.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  ensure(lo <= hi, "Rng::uniform: lo > hi (", lo, " > ", hi, ")");
  const std::uint64_t span = hi - lo;
  if (span == UINT64_MAX) return next_u64();
  return lo + below(span + 1);
}

std::uint64_t Rng::below(std::uint64_t n) {
  ensure(n > 0, "Rng::below: n must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::uniform01() {
  // 53 random mantissa bits -> uniform double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform01() < p; }

std::uint64_t Rng::skewed(std::uint64_t lo, std::uint64_t hi, double shape) {
  ensure(lo <= hi, "Rng::skewed: lo > hi");
  ensure(shape > 0.0, "Rng::skewed: shape must be positive");
  const double u = uniform01();
  const double frac = std::pow(u, shape);  // mass concentrated near 0
  const double span = static_cast<double>(hi - lo);
  auto value = lo + static_cast<std::uint64_t>(frac * span + 0.5);
  return value > hi ? hi : value;
}

}  // namespace nocsched
