#include "common/ascii_chart.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace nocsched {

BarChart::BarChart(std::string title, std::vector<std::string> series)
    : title_(std::move(title)), series_(std::move(series)) {
  ensure(!series_.empty(), "BarChart: need at least one series");
}

void BarChart::add_group(const std::string& label, const std::vector<double>& values) {
  ensure(values.size() == series_.size(), "BarChart: group '", label, "' has ",
         values.size(), " values for ", series_.size(), " series");
  for (double v : values) ensure(v >= 0.0 && std::isfinite(v), "BarChart: bad value in '", label, "'");
  groups_.push_back({label, values});
}

std::string BarChart::render(std::size_t bar_width) const {
  double max_v = 0.0;
  std::size_t label_w = 0;
  std::size_t series_w = 0;
  for (const auto& g : groups_) {
    label_w = std::max(label_w, g.label.size());
    for (double v : g.values) max_v = std::max(max_v, v);
  }
  for (const auto& s : series_) series_w = std::max(series_w, s.size());
  if (max_v <= 0.0) max_v = 1.0;

  std::string out = title_ + "\n" + std::string(title_.size(), '=') + "\n";
  for (const auto& g : groups_) {
    for (std::size_t s = 0; s < series_.size(); ++s) {
      const std::string row_label = s == 0 ? g.label : std::string();
      const double v = g.values[s];
      const auto n = static_cast<std::size_t>(std::lround(v / max_v * static_cast<double>(bar_width)));
      out += cat("  ", row_label, std::string(label_w - row_label.size(), ' '), "  ",
                 series_[s], std::string(series_w - series_[s].size(), ' '), " |",
                 std::string(n, '#'), std::string(bar_width - n, ' '), "| ",
                 with_commas(static_cast<std::uint64_t>(std::llround(v))), "\n");
    }
    out += '\n';
  }
  return out;
}

}  // namespace nocsched
