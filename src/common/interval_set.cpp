#include "common/interval_set.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace nocsched {

namespace {

// First stored interval whose end is after `t` (candidate for overlap).
auto first_ending_after(const std::vector<Interval>& ivs, std::uint64_t t) {
  return std::partition_point(ivs.begin(), ivs.end(),
                              [t](const Interval& iv) { return iv.end <= t; });
}

}  // namespace

bool IntervalSet::conflicts(const Interval& iv) const {
  if (iv.empty()) return false;
  const auto it = first_ending_after(ivs_, iv.start);
  return it != ivs_.end() && it->start < iv.end;
}

void IntervalSet::insert(const Interval& iv) {
  ensure(!iv.empty(), "IntervalSet::insert: empty interval [", iv.start, ", ", iv.end, ")");
  const auto it = first_ending_after(ivs_, iv.start);
  ensure(it == ivs_.end() || it->start >= iv.end,
         "IntervalSet::insert: [", iv.start, ", ", iv.end, ") overlaps [",
         it == ivs_.end() ? 0 : it->start, ", ", it == ivs_.end() ? 0 : it->end, ")");
  ivs_.insert(it, iv);
}

std::uint64_t IntervalSet::earliest_fit(std::uint64_t from, std::uint64_t len) const {
  if (len == 0) return from;
  std::uint64_t t = from;
  for (auto it = first_ending_after(ivs_, t); it != ivs_.end(); ++it) {
    if (it->start >= t && it->start - t >= len) return t;  // gap before *it fits
    if (it->end > t) t = it->end;
  }
  return t;
}

std::uint64_t IntervalSet::occupied_until(std::uint64_t horizon) const {
  std::uint64_t total = 0;
  for (const Interval& iv : ivs_) {
    if (iv.start >= horizon) break;
    total += std::min(iv.end, horizon) - iv.start;
  }
  return total;
}

}  // namespace nocsched
