#include "common/parallel.hpp"

#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace nocsched {

unsigned hardware_jobs() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

void parallel_for(std::size_t n, unsigned jobs, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (jobs == 0) jobs = hardware_jobs();
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs, n));

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  obs::MetricsRegistry& reg = obs::registry();
  const bool metered = reg.enabled();
  if (metered) {
    static obs::Counter& calls = reg.counter("parallel.calls");
    static obs::Counter& tasks = reg.counter("parallel.tasks");
    calls.inc();
    tasks.add(n);
  }

  auto drain = [&] {
    std::uint64_t claimed = 0;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      ++claimed;
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (i < error_index) {
          error_index = i;
          error = std::current_exception();
        }
      }
    }
    // How many indices each worker claimed is scheduling-dependent, so
    // the distribution lives in the "wall." namespace and stays out of
    // byte-stable outputs.
    if (metered && claimed > 0) {
      static obs::Histogram& per_worker = reg.histogram(
          "wall.parallel.worker_claims", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
      per_worker.observe(claimed);
    }
  };

  if (workers <= 1) {
    drain();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (unsigned t = 0; t + 1 < workers; ++t) threads.emplace_back(drain);
    drain();  // the caller is worker 0
    for (std::thread& th : threads) th.join();
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace nocsched
