#pragma once
// Terminal rendering of grouped bar charts, used by the benchmark
// harness to print Figure-1-style panels (test time vs. number of
// reused processors, one bar per power configuration).

#include <cstdint>
#include <string>
#include <vector>

namespace nocsched {

/// A grouped horizontal bar chart.  Each group is an x-axis category
/// (e.g. "noproc", "2proc"); each series is one bar within every group
/// (e.g. "50% power limit", "no power limit").
class BarChart {
 public:
  BarChart(std::string title, std::vector<std::string> series);

  /// Append a group; `values` must have one entry per series.
  void add_group(const std::string& label, const std::vector<double>& values);

  /// Render with bars scaled to `bar_width` characters at the maximum.
  [[nodiscard]] std::string render(std::size_t bar_width = 50) const;

 private:
  struct Group {
    std::string label;
    std::vector<double> values;
  };

  std::string title_;
  std::vector<std::string> series_;
  std::vector<Group> groups_;
};

}  // namespace nocsched
