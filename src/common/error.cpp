#include "common/error.hpp"

namespace nocsched {

void assert_failed(const char* expr, const char* file, int line) {
  throw Error(cat("internal invariant violated: ", expr, " at ", file, ":", line));
}

}  // namespace nocsched
