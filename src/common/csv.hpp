#pragma once
// Minimal CSV emission for experiment results.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace nocsched {

/// Streams rows of a CSV table with RFC-4180-style quoting.
/// Row width is fixed by the header; mismatched rows throw.
class CsvWriter {
 public:
  /// Writes the header row immediately.
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  /// Write one row; must match the header width.
  void row(const std::vector<std::string>& cells);

  /// Convenience: accept any mix of streamable cell values.
  template <typename... Cells>
  void row_of(const Cells&... cells) {
    row(std::vector<std::string>{to_cell(cells)...});
  }

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      return std::to_string(v);
    }
  }

  void emit(const std::vector<std::string>& cells);

  std::ostream& out_;
  std::size_t width_;
  std::size_t rows_ = 0;
};

/// Quote a single CSV field if it contains comma, quote, or newline.
[[nodiscard]] std::string csv_quote(const std::string& field);

}  // namespace nocsched
