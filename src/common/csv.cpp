#include "common/csv.hpp"

#include "common/error.hpp"

namespace nocsched {

std::string csv_quote(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), width_(header.size()) {
  ensure(width_ > 0, "CsvWriter: header must not be empty");
  emit(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  ensure(cells.size() == width_, "CsvWriter: row has ", cells.size(),
         " cells, header has ", width_);
  emit(cells);
  ++rows_;
}

void CsvWriter::emit(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_quote(cells[i]);
  }
  out_ << '\n';
}

}  // namespace nocsched
