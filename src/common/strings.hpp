#pragma once
// Small string utilities used by the benchmark parser and reporters.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nocsched {

/// Strip ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Split on any run of ASCII whitespace; no empty tokens.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view s);

/// Split on a single character delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char delim);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Parse a non-negative integer; throws nocsched::Error on any junk,
/// with `what` naming the field for the error message.
[[nodiscard]] std::uint64_t parse_u64(std::string_view s, std::string_view what);

/// Parse a double; throws nocsched::Error on junk.
[[nodiscard]] double parse_double(std::string_view s, std::string_view what);

/// Lower-case ASCII copy.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Join tokens with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Group digits with thousands separators for table output: 1234567 -> "1,234,567".
[[nodiscard]] std::string with_commas(std::uint64_t v);

}  // namespace nocsched
