#pragma once
// Minimal deterministic fork-join parallelism.
//
// parallel_for distributes the indices [0, n) over a fixed set of
// worker threads that claim indices from one shared atomic counter —
// no work stealing, no task queue.  Callers that want results
// independent of the job count must make each index's work
// self-contained (own RNG stream, own output slot) and reduce
// serially afterwards; the multistart planner is the model user.
// Threads are spawned per call: the intended grain is milliseconds of
// work per index, where spawn cost is noise.

#include <cstddef>
#include <functional>

namespace nocsched {

/// Worker count meaning "use every hardware thread": max(1,
/// std::thread::hardware_concurrency()).
[[nodiscard]] unsigned hardware_jobs();

/// Run body(i) for every i in [0, n) on up to `jobs` threads (0 means
/// hardware_jobs(); <= 1 runs inline on the caller).  Blocks until all
/// indices finish.  If bodies throw, every index still runs and the
/// exception from the lowest-numbered throwing index is rethrown — so
/// failure behaviour, like success behaviour, does not depend on the
/// job count.
void parallel_for(std::size_t n, unsigned jobs, const std::function<void(std::size_t)>& body);

}  // namespace nocsched
