#pragma once
// Checked integral narrowing.
//
// Rule D5 (nocsched-lint) bans unchecked narrowing static_casts in
// parser-adjacent code: the ITC'02 model stores 32-bit counts, and a
// silent truncation turns an absurd input into a plausible small
// number.  checked_narrow is the sanctioned route — it throws
// nocsched::Error when the value does not survive the round trip, and
// compiles to the plain cast plus one comparison otherwise.

#include <type_traits>

#include "common/error.hpp"

namespace nocsched {

/// `static_cast<To>(v)`, verified: throws nocsched::Error when the
/// result does not round-trip back to `v` (magnitude loss or sign
/// flip).  Both types must be integral.
template <typename To, typename From>
[[nodiscard]] constexpr To checked_narrow(From v) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "checked_narrow is for integral conversions");
  const To out = static_cast<To>(v);
  bool ok = static_cast<From>(out) == v;
  if constexpr (std::is_signed_v<From> != std::is_signed_v<To>) {
    ok = ok && ((out < To{}) == (v < From{}));
  }
  if (!ok) fail("narrowing conversion lost value ", v);
  return out;
}

}  // namespace nocsched
