#pragma once
// Deterministic discrete-event queue.
//
// A min-heap keyed on (time, insertion sequence): events fire in time
// order, and events scheduled for the same instant fire in the order
// they were pushed.  The sequence tie-break is what makes the replay
// simulator reproducible — two runs over identical inputs execute the
// exact same handler order, so traces are byte-identical.

#include <cstdint>
#include <queue>
#include <vector>

#include "common/error.hpp"

namespace nocsched::des {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    std::uint64_t time = 0;
    std::uint64_t seq = 0;  ///< global push order; breaks time ties FIFO
    Payload payload{};
  };

  /// Schedule `payload` at `time` (may equal the current front's time;
  /// may not be used to travel into the past — callers pop
  /// monotonically, so pushing below the last popped time is a bug).
  void push(std::uint64_t time, Payload payload) {
    NOCSCHED_ASSERT(time >= last_popped_);
    heap_.push(Event{time, next_seq_++, payload});
  }

  /// Remove and return the earliest event (FIFO among equal times).
  [[nodiscard]] Event pop() {
    NOCSCHED_ASSERT(!heap_.empty());
    Event e = heap_.top();
    heap_.pop();
    last_popped_ = e.time;
    return e;
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Total events ever pushed (the replay's event count statistic).
  [[nodiscard]] std::uint64_t pushed() const { return next_seq_; }

 private:
  struct After {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, After> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t last_popped_ = 0;
};

}  // namespace nocsched::des
