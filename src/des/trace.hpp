#pragma once
// Result of a discrete-event replay: observed per-session timing,
// per-channel traffic, and peak concurrent power.  The trace is the
// simulated counterpart of core::Schedule — sim::cross_check compares
// the two and report/ renders them side by side.

#include <cstdint>
#include <vector>

#include "noc/mesh.hpp"

namespace nocsched::des {

/// Observed execution of one planned session.
struct SessionTrace {
  int module_id = 0;
  int source_resource = -1;  ///< index into SystemModel::endpoints()
  int sink_resource = -1;
  std::uint64_t planned_start = 0;
  std::uint64_t planned_end = 0;
  std::uint64_t observed_start = 0;  ///< actual launch (>= planned_start)
  std::uint64_t observed_end = 0;    ///< last response checked/absorbed
  std::uint64_t patterns = 0;        ///< test patterns replayed
  std::uint64_t flits_in = 0;        ///< stimulus flits injected
  std::uint64_t flits_out = 0;       ///< response flits collected
  std::uint64_t blocked_cycles = 0;  ///< packet-cycles spent waiting on busy channels
  double power = 0.0;                ///< constant draw while active (from the plan)

  [[nodiscard]] std::uint64_t planned_duration() const { return planned_end - planned_start; }
  [[nodiscard]] std::uint64_t observed_duration() const {
    return observed_end - observed_start;
  }
  // The deltas are signed: a faithful replay keeps them >= 0, but the
  // reports must stay readable on exactly the traces that violate that
  // (the "optimistic model" regressions cross_check exists to catch).
  /// Cycles the launch slipped past the plan (endpoint or power gating).
  [[nodiscard]] std::int64_t start_slip() const {
    return static_cast<std::int64_t>(observed_start) -
           static_cast<std::int64_t>(planned_start);
  }
  /// Cycles the completion slipped past the planned end.
  [[nodiscard]] std::int64_t finish_slip() const {
    return static_cast<std::int64_t>(observed_end) - static_cast<std::int64_t>(planned_end);
  }
  /// Observed minus planned duration (pipeline fill + contention).
  [[nodiscard]] std::int64_t stretch_cycles() const {
    return static_cast<std::int64_t>(observed_duration()) -
           static_cast<std::int64_t>(planned_duration());
  }
};

/// Traffic carried by one directed mesh channel over the whole replay.
struct ChannelUse {
  noc::ChannelId channel = -1;
  std::uint64_t busy_cycles = 0;  ///< cycles held by some packet
  std::uint64_t packets = 0;      ///< packets (worms) that crossed

  /// Fraction of the makespan the channel was held (0 for makespan 0).
  [[nodiscard]] double utilization(std::uint64_t makespan) const;
};

/// Complete observed record of one replay.
struct SimTrace {
  std::vector<SessionTrace> sessions;  ///< sorted by (observed_start, module_id)
  std::uint64_t planned_makespan = 0;
  std::uint64_t observed_makespan = 0;
  double peak_power = 0.0;   ///< max summed draw across concurrent sessions
  double power_limit = 0.0;  ///< budget the replay honoured (infinity = none)
  std::vector<ChannelUse> channels;  ///< channels that carried traffic, ascending id
  std::uint64_t events_processed = 0;
  std::uint64_t packets_delivered = 0;

  /// Trace of the session testing `module_id`; throws if none exists.
  [[nodiscard]] const SessionTrace& session_for(int module_id) const;
};

/// Peak concurrent power recomputed from the observed session intervals
/// alone (independent of the simulator's own bookkeeping; used by the
/// property suite to cross-examine the trace).
[[nodiscard]] double observed_peak_power(const SimTrace& trace);

}  // namespace nocsched::des
