#pragma once
// Discrete-event flit-level replay of a planned test schedule.
//
// The planner prices each session analytically (core/session_model);
// this simulator re-executes the whole plan at packet granularity on
// the mesh and reports what actually happens:
//
//   * every session launches at its planned start — or as soon after as
//     its interfaces are free, its serving processor has finished its
//     own test, and the live power draw leaves room under the budget
//     (runtime admission control, like the test controller would do);
//   * each test pattern becomes a stimulus packet (worm) from the
//     source to the core and a response packet from the core to the
//     sink, sized by the wrapper/NoC characterization (flits_for_bits);
//   * packets traverse their XY route wormhole-style: the head pays the
//     routing latency per hop, body flits stream at the flow-control
//     rate, a blocked head stalls in place holding its acquired
//     channels, and releases back-propagate tail-accurately;
//   * every directed channel carries one worm at a time (FIFO grant
//     order), so link-level contention between concurrent sessions —
//     which the planner only approximates as fluid bandwidth — shows up
//     as real blocking;
//   * sources, cores and sinks are single servers with the
//     characterized per-pattern service times (leon/plasma rates, ATE
//     at line rate, wrapper scan shift), and a processor playing both
//     roles serializes its generate and check jobs on one core;
//   * each session follows the protocol the analytical model prices:
//     one-time circuit setup of both XY paths, then the BIST prologue,
//     then the pipelined pattern loop (a response leaves the wrapper
//     scan_out_length cycles after its shift, overlapping the next
//     shift-in), and finally a wrapper drain of the non-overlapped
//     min(si, so) scan-out remainders before the interfaces release.
//
// The replay is exactly deterministic: integer event times with FIFO
// tie-breaking (see EventQueue), so identical inputs give byte-identical
// traces.  Model simplifications are conservative where it matters —
// observed timing never undercuts the analytical plan (asserted by the
// test suite; sim::cross_check reports the deltas).
//
// The schedule must be valid (sim::validate) — the replay recomputes
// routes and phase costs from the SystemModel and throws
// nocsched::Error on structurally broken input (bad resource indices,
// unknown modules, or a plan whose dependencies can never be met).

#include <span>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "core/system_model.hpp"
#include "des/trace.hpp"
#include "noc/fault.hpp"

namespace nocsched::des {

/// Replay `schedule` on `sys` and return the observed trace.
[[nodiscard]] SimTrace replay(const core::SystemModel& sys, const core::Schedule& schedule);

/// A planned session the degraded mesh cannot run at all.
struct LostSession {
  int module_id = 0;
  std::string reason;
};

/// Result of replaying a plan on a mesh with faults: the sessions that
/// could still run (possibly detoured and delayed), and the ones that
/// could not.
struct DegradedReplay {
  SimTrace trace;                 ///< surviving sessions only
  std::vector<LostSession> lost;  ///< plan order (start, module id)
};

/// Replay `schedule` — planned for the pristine system — on `sys`
/// degraded by `faults`.  Sessions are routed fault-aware
/// (noc::fault_route), so a detour costs extra setup hops and real
/// channel contention; a session is lost when its module or an endpoint
/// is a dead processor, no surviving route connects its endpoints, or
/// the processor serving it lost its own test (transitively).  Lost
/// sessions never launch, draw no power, and hold no channels.
[[nodiscard]] DegradedReplay replay_degraded(const core::SystemModel& sys,
                                             const core::Schedule& schedule,
                                             const noc::FaultSet& faults);

/// As above for a mid-timeline epoch: processors in `pretested`
/// completed their own test in an earlier epoch, so sessions they serve
/// launch without waiting for (or losing) a processor test this plan
/// deliberately omits.
[[nodiscard]] DegradedReplay replay_degraded(const core::SystemModel& sys,
                                             const core::Schedule& schedule,
                                             const noc::FaultSet& faults,
                                             std::span<const int> pretested);

}  // namespace nocsched::des
