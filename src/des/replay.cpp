#include "des/replay.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>

#include "common/error.hpp"
#include "core/session_model.hpp"
#include "des/event_queue.hpp"
#include "noc/routing.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "power/budget.hpp"

namespace nocsched::des {

namespace {

/// Per-phase integer costs, precomputed once per session.  Service
/// times mirror core/session_model's per-pattern terms, ceiled per
/// stage; because ceil(max(a,b)) == max(ceil(a), ceil(b)), the pipeline
/// bottleneck equals the analytical per-pattern cost and the replay
/// never undercuts the plan.
struct PhaseCost {
  std::uint64_t patterns = 0;
  std::uint64_t flits_in = 0;      ///< stimulus flits per pattern
  std::uint64_t flits_out = 0;     ///< response flits per pattern
  std::uint64_t src_service = 0;   ///< source cycles per pattern (0 = line rate)
  std::uint64_t core_service = 0;  ///< wrapper shift: 1 + max(si, so)
  std::uint64_t snk_service = 0;   ///< sink cycles per pattern (0 = line rate)
  std::uint64_t gen_service = 0;   ///< same-CPU generate job (incl. overhead)
  std::uint64_t chk_service = 0;   ///< same-CPU check job
  std::uint64_t drain = 0;         ///< scan-out cycles before a response leaves
  std::uint64_t tail = 0;          ///< non-overlapped scan-out: min(si, so)
};

/// (phase, pattern-within-phase) cursor; each pipeline stage advances
/// its own copy in order.
struct Cursor {
  std::size_t phase = 0;
  std::uint64_t idx = 0;
};

enum class Ev : std::uint8_t {
  kLaunch,        ///< arg = session: planned start reached, try admission
  kGenDone,       ///< arg = session: source finished producing one pattern
  kHeadAdvance,   ///< arg = worm: head crossed a hop, request the next channel
  kRelease,       ///< arg = channel: holder's tail passed, grant next waiter
  kDelivered,     ///< arg = worm: full packet at its destination
  kEmitResponse,  ///< arg = session: a response has left the wrapper, enters the out path
  kSinkDone,      ///< arg = session: sink finished checking one response
  kDispatch,      ///< arg = session: same-CPU server may pick a job
  kSessionClose,  ///< arg = session: wrapper drained, interfaces release
};

struct Payload {
  Ev kind = Ev::kLaunch;
  int arg = 0;
};

enum class CpuJob : std::uint8_t { kNone, kGen, kChk };

struct SessionState {
  // -- static ------------------------------------------------------------
  int module_id = 0;
  int src = -1;  ///< endpoint indices
  int snk = -1;
  std::vector<noc::ChannelId> path_in;
  std::vector<noc::ChannelId> path_out;
  std::vector<PhaseCost> phases;
  std::uint64_t total_patterns = 0;
  std::uint64_t setup = 0;     ///< one-time circuit setup of both XY paths
  std::uint64_t prologue = 0;  ///< BIST kernel startup before the first pattern
  std::uint64_t teardown = 0;  ///< wrapper drain before the interfaces release
  bool same_cpu = false;       ///< one processor plays both roles
  bool snk_is_cpu = false;
  std::uint64_t planned_start = 0;
  std::uint64_t planned_end = 0;
  double power = 0.0;

  // -- dynamic -----------------------------------------------------------
  bool launched = false;
  bool done = false;
  std::uint64_t observed_start = 0;
  std::uint64_t observed_end = 0;
  std::uint64_t blocked_cycles = 0;
  std::uint64_t flits_in = 0;
  std::uint64_t flits_out = 0;

  Cursor gen_cursor;   ///< next pattern to generate
  Cursor core_cursor;  ///< next pattern the wrapper will shift
  Cursor emit_cursor;  ///< next response to put on the out path
  Cursor sink_cursor;  ///< next response a distinct CPU sink will check
  Cursor chk_cursor;   ///< next response the same-CPU server will check
  std::uint64_t core_free = 0;  ///< wrapper busy-until
  std::uint64_t emit_prev = 0;  ///< last scheduled scan-out (responses leave in order)
  std::uint64_t sink_free = 0;  ///< distinct CPU sink busy-until
  std::uint64_t completed = 0;  ///< responses fully absorbed/checked

  // same-CPU single server
  bool cpu_busy = false;
  CpuJob cpu_job = CpuJob::kNone;
  std::deque<std::uint64_t> chk_ready;  ///< delivery times of unchecked responses
  bool gen_allowed = false;             ///< previous stimulus worm cleared hop 0
  std::uint64_t gen_ready_time = 0;

  // local-port streaming for zero-hop paths (source or sink on the
  // core's own router): one flit per flow-control cycle, serialized
  std::uint64_t local_in_free = 0;
  std::uint64_t local_out_free = 0;
};

struct Worm {
  int session = -1;
  bool response = false;
  bool notify_inject_on_delivery = false;  ///< zero-hop/zero-flit stimulus
  std::uint64_t flits = 0;
  int next_hop = 0;  ///< index of the channel being requested/held last
  std::uint64_t request_time = 0;
  std::vector<std::uint64_t> grants;  ///< grant time per acquired channel
};

struct ChannelState {
  bool busy = false;
  std::deque<int> waiters;  ///< worm ids, FIFO
  std::uint64_t busy_cycles = 0;
  std::uint64_t packets = 0;
};

std::uint64_t ceil_cycles(double v) {
  return static_cast<std::uint64_t>(std::llround(std::ceil(v)));
}

class Replayer {
 public:
  Replayer(const core::SystemModel& sys, const core::Schedule& schedule,
           const noc::FaultSet* faults, std::span<const int> pretested = {})
      : sys_(sys), schedule_(schedule), faults_(faults),
        pretested_(pretested.begin(), pretested.end()),
        channels_(sys.mesh().channel_count()) {
    endpoint_busy_.assign(sys_.endpoints().size(), false);
    build_sessions();
  }

  [[nodiscard]] std::vector<LostSession> take_lost() { return std::move(lost_); }

  SimTrace run() {
    const obs::Span span("replay");
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      queue_.push(sessions_[i].planned_start, {Ev::kLaunch, static_cast<int>(i)});
      pending_.push_back(static_cast<int>(i));
    }
    while (!queue_.empty()) {
      const auto e = queue_.pop();
      now_ = e.time;
      ++events_;
      dispatch(e.payload);
    }
    for (const SessionState& s : sessions_) {
      ensure(s.done, "replay deadlock: module ", s.module_id,
             " never completed — schedule dependencies cannot be met (validate it first)");
    }
    return build_trace();
  }

 private:
  // ----- setup ----------------------------------------------------------

  /// Both fault-aware legs of a surviving session, computed once during
  /// loss detection and consumed when the SessionState is built.
  struct FaultRoutes {
    std::vector<noc::ChannelId> in;
    std::vector<noc::ChannelId> out;
  };

  /// Why `planned` cannot run on the degraded mesh (empty = it can,
  /// and `routes` holds its legs): its module or an endpoint is a dead
  /// processor, or a leg has no surviving route.  The transitive
  /// serving-processor losses are cascaded by build_sessions after
  /// every direct loss is known.
  std::string direct_loss_reason(const core::Session& planned, FaultRoutes& routes) const {
    const auto& endpoints = sys_.endpoints();
    const core::Endpoint& src = endpoints[static_cast<std::size_t>(planned.source_resource)];
    const core::Endpoint& snk = endpoints[static_cast<std::size_t>(planned.sink_resource)];
    if (sys_.soc().module(planned.module_id).is_processor &&
        faults_->processor_failed(planned.module_id)) {
      return cat("module ", planned.module_id, " is a failed processor");
    }
    if (src.is_processor() && faults_->processor_failed(src.processor_module)) {
      return cat("source processor ", src.processor_module, " failed");
    }
    if (snk.is_processor() && faults_->processor_failed(snk.processor_module)) {
      return cat("sink processor ", snk.processor_module, " failed");
    }
    const noc::RouterId at = sys_.router_of(planned.module_id);
    auto in = noc::fault_route(sys_.mesh(), *faults_, src.router, at);
    if (!in) {
      return cat("no surviving route from ", src.name(), " to the core");
    }
    auto out = noc::fault_route(sys_.mesh(), *faults_, at, snk.router);
    if (!out) {
      return cat("no surviving route from the core to ", snk.name());
    }
    routes.in = std::move(*in);
    routes.out = std::move(*out);
    return {};
  }

  void build_sessions() {
    const auto& endpoints = sys_.endpoints();
    const noc::Characterization& nc = sys_.params().noc;
    const double fc = static_cast<double>(nc.flow_control_latency);

    for (const core::Session& planned : schedule_.sessions) {
      ensure(planned.source_resource >= 0 &&
                 static_cast<std::size_t>(planned.source_resource) < endpoints.size() &&
                 planned.sink_resource >= 0 &&
                 static_cast<std::size_t>(planned.sink_resource) < endpoints.size(),
             "replay: module ", planned.module_id, ": resource index out of range");
      const core::Endpoint& src = endpoints[static_cast<std::size_t>(planned.source_resource)];
      const core::Endpoint& snk = endpoints[static_cast<std::size_t>(planned.sink_resource)];
      ensure(src.can_source() && snk.can_sink(), "replay: module ", planned.module_id,
             ": illegal endpoint roles");
    }

    // Which planned sessions the faults kill: the direct losses, then
    // the cascade — a session whose serving processor lost its own test
    // can never launch (the replay gates on processor_done).
    std::map<int, std::string> lost_reason;   // module id -> why
    std::map<int, FaultRoutes> fault_routes;  // module id -> surviving legs
    if (faults_ != nullptr) {
      for (const core::Session& planned : schedule_.sessions) {
        FaultRoutes routes;
        std::string reason = direct_loss_reason(planned, routes);
        if (!reason.empty()) {
          lost_reason.emplace(planned.module_id, std::move(reason));
        } else {
          fault_routes.emplace(planned.module_id, std::move(routes));
        }
      }
      for (bool changed = true; changed;) {
        changed = false;
        for (const core::Session& planned : schedule_.sessions) {
          if (lost_reason.count(planned.module_id) != 0) continue;
          for (int r : {planned.source_resource, planned.sink_resource}) {
            const core::Endpoint& ep = endpoints[static_cast<std::size_t>(r)];
            if (ep.is_processor() && lost_reason.count(ep.processor_module) != 0) {
              lost_reason.emplace(planned.module_id,
                                  cat("serving processor ", ep.processor_module,
                                      " lost its own test"));
              changed = true;
              break;
            }
          }
        }
      }
      for (const core::Session& planned : schedule_.sessions) {
        const auto it = lost_reason.find(planned.module_id);
        if (it != lost_reason.end()) lost_.push_back({planned.module_id, it->second});
      }
    }

    for (const core::Session& planned : schedule_.sessions) {
      if (faults_ != nullptr && lost_reason.count(planned.module_id) != 0) continue;
      const core::Endpoint& src = endpoints[static_cast<std::size_t>(planned.source_resource)];
      const core::Endpoint& snk = endpoints[static_cast<std::size_t>(planned.sink_resource)];

      SessionState s;
      s.module_id = planned.module_id;
      s.src = planned.source_resource;
      s.snk = planned.sink_resource;
      s.planned_start = planned.start;
      s.planned_end = planned.end;
      s.power = planned.power;
      const noc::RouterId at = sys_.router_of(planned.module_id);
      if (faults_ != nullptr) {
        // Present by construction: unroutable sessions were lost above.
        FaultRoutes& routes = fault_routes.at(planned.module_id);
        s.path_in = std::move(routes.in);
        s.path_out = std::move(routes.out);
      } else {
        s.path_in = noc::xy_route(sys_.mesh(), src.router, at);
        s.path_out = noc::xy_route(sys_.mesh(), at, snk.router);
      }
      s.setup = nc.path_setup_cycles(static_cast<int>(s.path_in.size())) +
                nc.path_setup_cycles(static_cast<int>(s.path_out.size()));
      s.same_cpu = src.is_processor() && snk.is_processor() &&
                   planned.source_resource == planned.sink_resource;
      s.snk_is_cpu = snk.is_processor();

      double prologue = 0.0;
      if (src.is_processor()) {
        prologue = std::max(prologue, sys_.params().rates(src.cpu).setup_cycles);
      }
      if (snk.is_processor()) {
        prologue = std::max(prologue, sys_.params().rates(snk.cpu).setup_cycles);
      }
      s.prologue = ceil_cycles(prologue);

      for (const wrapper::TestPhase& phase : sys_.phases(planned.module_id)) {
        PhaseCost pc;
        pc.patterns = phase.patterns;
        pc.flits_in = nc.flits_for_bits(phase.stimulus_bits);
        pc.flits_out = nc.flits_for_bits(phase.response_bits);
        pc.core_service =
            1 + static_cast<std::uint64_t>(std::max(phase.scan_in_length, phase.scan_out_length));
        pc.drain = phase.scan_out_length;
        pc.tail = std::min(phase.scan_in_length, phase.scan_out_length);
        const double fi = static_cast<double>(pc.flits_in);
        const double fo = static_cast<double>(pc.flits_out);
        if (src.is_processor()) {
          const core::CpuRates& r = sys_.params().rates(src.cpu);
          pc.src_service =
              ceil_cycles(r.per_pattern_overhead + fi * std::max(fc, r.per_stimulus_flit));
          pc.gen_service = pc.src_service;
        }
        if (snk.is_processor()) {
          const core::CpuRates& r = sys_.params().rates(snk.cpu);
          pc.snk_service =
              ceil_cycles(r.per_pattern_overhead + fo * std::max(fc, r.per_response_flit));
          pc.chk_service = ceil_cycles(fo * std::max(fc, r.per_response_flit));
        }
        s.total_patterns += pc.patterns;
        s.teardown += pc.tail;
        s.phases.push_back(pc);
      }
      ensure(s.total_patterns > 0, "replay: module ", planned.module_id, " has no patterns");
      sessions_.push_back(std::move(s));
    }
  }

  // ----- event dispatch -------------------------------------------------

  void dispatch(const Payload& p) {
    switch (p.kind) {
      case Ev::kLaunch:
        try_pending_launches();
        break;
      case Ev::kGenDone:
        on_gen_done(sessions_[static_cast<std::size_t>(p.arg)], p.arg);
        break;
      case Ev::kHeadAdvance: {
        Worm& w = worms_[static_cast<std::size_t>(p.arg)];
        w.request_time = now_;
        request_channel(p.arg);
        break;
      }
      case Ev::kRelease:
        on_release(p.arg);
        break;
      case Ev::kDelivered:
        on_delivered(p.arg);
        break;
      case Ev::kEmitResponse:
        on_emit_response(sessions_[static_cast<std::size_t>(p.arg)], p.arg);
        break;
      case Ev::kSinkDone:
        on_sink_done(sessions_[static_cast<std::size_t>(p.arg)], p.arg);
        break;
      case Ev::kDispatch:
        dispatch_cpu(sessions_[static_cast<std::size_t>(p.arg)], p.arg);
        break;
      case Ev::kSessionClose:
        finish_session(sessions_[static_cast<std::size_t>(p.arg)]);
        break;
    }
  }

  // ----- launch admission -----------------------------------------------

  void try_pending_launches() {
    // Deterministic order: pending_ holds session indices in plan order
    // (sorted by planned start, then module id).
    for (auto it = pending_.begin(); it != pending_.end();) {
      SessionState& s = sessions_[static_cast<std::size_t>(*it)];
      if (s.planned_start > now_) {
        // Later sessions in the list can still be eligible (equal-start
        // groups), but launching out of plan order would be
        // nondeterministic policy; a kLaunch event is already scheduled.
        ++it;
        continue;
      }
      if (try_launch(s, *it)) {
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }

  bool try_launch(SessionState& s, int index) {
    if (endpoint_busy_[static_cast<std::size_t>(s.src)] ||
        endpoint_busy_[static_cast<std::size_t>(s.snk)]) {
      return false;
    }
    for (int r : {s.src, s.snk}) {
      const core::Endpoint& ep = sys_.endpoints()[static_cast<std::size_t>(r)];
      if (ep.is_processor() && !processor_done(ep.processor_module)) return false;
    }
    if (!power::within_budget(active_power_ + s.power, schedule_.power_limit)) return false;

    s.launched = true;
    s.observed_start = now_;
    endpoint_busy_[static_cast<std::size_t>(s.src)] = true;
    endpoint_busy_[static_cast<std::size_t>(s.snk)] = true;
    active_power_ += s.power;

    // Circuit setup of both XY paths, then the BIST prologue, before the
    // first pattern — the session protocol the analytical model prices.
    const std::uint64_t first_ready = now_ + s.setup + s.prologue;
    if (s.same_cpu) {
      s.gen_allowed = true;
      s.gen_ready_time = first_ready;
      queue_.push(first_ready, {Ev::kDispatch, index});
    } else {
      queue_.push(first_ready + s.phases[0].src_service, {Ev::kGenDone, index});
    }
    return true;
  }

  bool processor_done(int module_id) const {
    // A processor tested to completion in an earlier timeline epoch
    // serves from instant 0 — its test is deliberately absent here.
    for (const int id : pretested_) {
      if (id == module_id) return true;
    }
    for (const SessionState& s : sessions_) {
      if (s.module_id == module_id) return s.done;
    }
    return false;  // processor never tested by this plan — cannot serve
  }

  /// All responses absorbed: drain the wrapper (the non-overlapped
  /// min(si, so) remainder of each phase's final scan-out) before the
  /// session's interfaces are released and its power draw stops.
  void begin_close(SessionState& s, int index) {
    queue_.push(now_ + s.teardown, {Ev::kSessionClose, index});
  }

  void finish_session(SessionState& s) {
    s.done = true;
    s.observed_end = now_;
    endpoint_busy_[static_cast<std::size_t>(s.src)] = false;
    endpoint_busy_[static_cast<std::size_t>(s.snk)] = false;
    active_power_ -= s.power;
    try_pending_launches();
  }

  // ----- source / same-CPU server ---------------------------------------

  bool exhausted(const Cursor& c, const SessionState& s) const {
    return c.phase >= s.phases.size();
  }

  void advance(Cursor& c, const SessionState& s) const {
    if (++c.idx >= s.phases[c.phase].patterns) {
      c.idx = 0;
      ++c.phase;
    }
  }

  /// The source (or the same-CPU server's generate job) finished
  /// producing one pattern: ship it.
  void on_gen_done(SessionState& s, int index) {
    const std::uint64_t flits = s.phases[s.gen_cursor.phase].flits_in;
    advance(s.gen_cursor, s);
    if (s.same_cpu) {
      s.cpu_busy = false;
      s.cpu_job = CpuJob::kNone;
    }
    send_packet(index, /*response=*/false, flits);
    // The injection grant may already have re-dispatched the server onto
    // the next generate; otherwise a queued response check can run now.
    if (s.same_cpu) dispatch_cpu(s, index);
  }

  /// The stimulus packet cleared the first hop (or its local port): the
  /// source may produce the next pattern.
  void on_stimulus_injected(SessionState& s, int index) {
    if (s.same_cpu) {
      s.gen_allowed = true;
      s.gen_ready_time = now_;
      dispatch_cpu(s, index);
      return;
    }
    if (exhausted(s.gen_cursor, s)) return;
    queue_.push(now_ + s.phases[s.gen_cursor.phase].src_service, {Ev::kGenDone, index});
  }

  /// Same-CPU server: pick the job whose input has been waiting longest
  /// (FIFO across generate/check; ties favour draining responses).
  void dispatch_cpu(SessionState& s, int index) {
    if (s.cpu_busy || s.done) return;
    const bool chk_avail = !s.chk_ready.empty();
    const bool gen_avail = s.gen_allowed && !exhausted(s.gen_cursor, s);
    if (!chk_avail && !gen_avail) return;
    bool pick_chk = chk_avail;
    if (chk_avail && gen_avail) pick_chk = s.chk_ready.front() <= s.gen_ready_time;
    s.cpu_busy = true;
    if (pick_chk) {
      s.cpu_job = CpuJob::kChk;
      s.chk_ready.pop_front();
      const std::uint64_t service = s.phases[s.chk_cursor.phase].chk_service;
      advance(s.chk_cursor, s);
      queue_.push(now_ + service, {Ev::kSinkDone, index});
    } else {
      s.cpu_job = CpuJob::kGen;
      s.gen_allowed = false;
      const std::uint64_t service = s.phases[s.gen_cursor.phase].gen_service;
      queue_.push(now_ + service, {Ev::kGenDone, index});
    }
  }

  // ----- network --------------------------------------------------------

  int alloc_worm() {
    if (!free_worms_.empty()) {
      const int id = free_worms_.back();
      free_worms_.pop_back();
      worms_[static_cast<std::size_t>(id)] = Worm{};
      return id;
    }
    worms_.emplace_back();
    return static_cast<int>(worms_.size()) - 1;
  }

  const std::vector<noc::ChannelId>& path_of(const Worm& w) const {
    const SessionState& s = sessions_[static_cast<std::size_t>(w.session)];
    return w.response ? s.path_out : s.path_in;
  }

  /// Put one packet on the network (or straight into delivery for
  /// zero-flit payloads and zero-hop routes).
  void send_packet(int session, bool response, std::uint64_t flits) {
    SessionState& s = sessions_[static_cast<std::size_t>(session)];
    const int id = alloc_worm();
    Worm& w = worms_[static_cast<std::size_t>(id)];
    w.session = session;
    w.response = response;
    w.flits = flits;
    const auto& path = path_of(w);
    if (flits == 0) {
      // Nothing crosses the mesh; the "packet" is a bookkeeping token.
      w.notify_inject_on_delivery = !response;
      queue_.push(now_, {Ev::kDelivered, id});
      return;
    }
    const std::uint64_t fc = sys_.params().noc.flow_control_latency;
    if (path.empty()) {
      // Source or sink sits on the core's router: stream through the
      // local port, one flit per flow-control cycle, serialized.
      std::uint64_t& local_free = response ? s.local_out_free : s.local_in_free;
      const std::uint64_t start = std::max(now_, local_free);
      const std::uint64_t delivered = start + flits * fc;
      local_free = delivered;
      w.notify_inject_on_delivery = !response;
      queue_.push(delivered, {Ev::kDelivered, id});
      return;
    }
    w.next_hop = 0;
    w.request_time = now_;
    request_channel(id);
  }

  void request_channel(int worm_id) {
    Worm& w = worms_[static_cast<std::size_t>(worm_id)];
    const noc::ChannelId c = path_of(w)[static_cast<std::size_t>(w.next_hop)];
    ChannelState& ch = channels_[static_cast<std::size_t>(c)];
    if (ch.busy) {
      ch.waiters.push_back(worm_id);
    } else {
      start_hold(worm_id);
    }
  }

  /// Grant the channel at index `next_hop` to the worm at time `now_`.
  void start_hold(int worm_id) {
    Worm& w = worms_[static_cast<std::size_t>(worm_id)];
    SessionState& s = sessions_[static_cast<std::size_t>(w.session)];
    const auto& path = path_of(w);
    const std::uint64_t hop = static_cast<std::uint64_t>(w.next_hop);
    const noc::ChannelId c = path[hop];
    ChannelState& ch = channels_[static_cast<std::size_t>(c)];
    ch.busy = true;
    ++ch.packets;
    s.blocked_cycles += now_ - w.request_time;
    w.grants.push_back(now_);
    if (hop == 0 && !w.response) {
      const int session_index = w.session;
      on_stimulus_injected(sessions_[static_cast<std::size_t>(session_index)], session_index);
    }
    const noc::Characterization& nc = sys_.params().noc;
    const std::uint64_t rl = nc.routing_latency;
    const std::uint64_t fc = nc.flow_control_latency;
    if (hop + 1 < path.size()) {
      w.next_hop = static_cast<int>(hop + 1);
      queue_.push(now_ + rl + fc, {Ev::kHeadAdvance, worm_id});
      return;
    }
    // Whole path acquired: the worm streams home.  Tail-accurate
    // releases with back-propagated stalls: the tail leaves channel j at
    //   T[j] = max(g[j] + rl + F*fc, T[j+1] - fc)
    // (never before "now" — a short packet that was long blocked
    // downstream conservatively keeps its upstream holds until freed).
    const std::uint64_t H = path.size();
    const std::uint64_t stream = rl + w.flits * fc;
    const std::uint64_t delivered = now_ + stream;
    std::vector<std::uint64_t> release(H);
    release[H - 1] = delivered;
    for (std::size_t j = H - 1; j-- > 0;) {
      release[j] = std::max({w.grants[j] + stream, release[j + 1] - fc, now_});
    }
    for (std::size_t j = 0; j < H; ++j) {
      ChannelState& held = channels_[static_cast<std::size_t>(path[j])];
      held.busy_cycles += release[j] - w.grants[j];
      queue_.push(release[j], {Ev::kRelease, path[j]});
    }
    queue_.push(delivered, {Ev::kDelivered, worm_id});
  }

  void on_release(int channel) {
    ChannelState& ch = channels_[static_cast<std::size_t>(channel)];
    ch.busy = false;
    if (ch.waiters.empty()) return;
    const int next = ch.waiters.front();
    ch.waiters.pop_front();
    start_hold(next);
  }

  // ----- core and sink ---------------------------------------------------

  void on_delivered(int worm_id) {
    Worm w = worms_[static_cast<std::size_t>(worm_id)];
    free_worms_.push_back(worm_id);
    ++packets_;
    SessionState& s = sessions_[static_cast<std::size_t>(w.session)];
    if (!w.response) {
      s.flits_in += w.flits;
      if (w.notify_inject_on_delivery) on_stimulus_injected(s, w.session);
      // The wrapper shifts patterns in arrival order, one at a time; a
      // pattern's response has fully scanned out `drain` cycles after
      // its own shift completes (overlapping the next shift-in), and
      // responses leave through one scan-out port strictly in pattern
      // order — the emission time is clamped monotone here, where
      // deliveries arrive in order, so a short-drain phase can never
      // overtake the long-drain phase before it.
      const PhaseCost& pc = s.phases[s.core_cursor.phase];
      advance(s.core_cursor, s);
      s.core_free = std::max(now_, s.core_free) + pc.core_service;
      s.emit_prev = std::max(s.core_free + pc.drain, s.emit_prev);
      queue_.push(s.emit_prev, {Ev::kEmitResponse, w.session});
      return;
    }
    s.flits_out += w.flits;
    if (s.same_cpu) {
      s.chk_ready.push_back(now_);
      dispatch_cpu(s, w.session);
    } else if (s.snk_is_cpu) {
      const std::uint64_t service = s.phases[s.sink_cursor.phase].snk_service;
      advance(s.sink_cursor, s);
      s.sink_free = std::max(now_, s.sink_free) + service;
      queue_.push(s.sink_free, {Ev::kSinkDone, w.session});
    } else {
      // ATE output port absorbs at line rate: the stream cycles were
      // already paid crossing the mesh.
      ++s.completed;
      if (s.completed == s.total_patterns) begin_close(s, w.session);
    }
  }

  void on_emit_response(SessionState& s, int index) {
    const PhaseCost& pc = s.phases[s.emit_cursor.phase];
    advance(s.emit_cursor, s);
    send_packet(index, /*response=*/true, pc.flits_out);
  }

  void on_sink_done(SessionState& s, int index) {
    if (s.same_cpu) {
      s.cpu_busy = false;
      s.cpu_job = CpuJob::kNone;
    }
    ++s.completed;
    if (s.completed == s.total_patterns) {
      begin_close(s, index);
      return;
    }
    if (s.same_cpu) dispatch_cpu(s, index);
  }

  // ----- wrap-up ----------------------------------------------------------

  SimTrace build_trace() const {
    SimTrace trace;
    trace.planned_makespan = schedule_.makespan;
    trace.power_limit = schedule_.power_limit;
    for (const SessionState& s : sessions_) {
      SessionTrace t;
      t.module_id = s.module_id;
      t.source_resource = s.src;
      t.sink_resource = s.snk;
      t.planned_start = s.planned_start;
      t.planned_end = s.planned_end;
      t.observed_start = s.observed_start;
      t.observed_end = s.observed_end;
      t.patterns = s.total_patterns;
      t.flits_in = s.flits_in;
      t.flits_out = s.flits_out;
      t.blocked_cycles = s.blocked_cycles;
      t.power = s.power;
      trace.observed_makespan = std::max(trace.observed_makespan, t.observed_end);
      trace.sessions.push_back(t);
    }
    std::sort(trace.sessions.begin(), trace.sessions.end(),
              [](const SessionTrace& a, const SessionTrace& b) {
                if (a.observed_start != b.observed_start) {
                  return a.observed_start < b.observed_start;
                }
                return a.module_id < b.module_id;
              });
    for (std::size_t c = 0; c < channels_.size(); ++c) {
      const ChannelState& ch = channels_[c];
      if (ch.packets == 0) continue;
      trace.channels.push_back(
          {static_cast<noc::ChannelId>(c), ch.busy_cycles, ch.packets});
    }
    trace.events_processed = events_;
    trace.packets_delivered = packets_;
    trace.peak_power = observed_peak_power(trace);

    // Flush once, here, where channels are walked in index order — the
    // per-channel histogram fills identically however the event loop
    // interleaved (it is single-threaded, but the invariant is asserted
    // by obs_tests against the metrics-off run).
    obs::MetricsRegistry& reg = obs::registry();
    if (reg.enabled()) {
      static obs::Counter& events = reg.counter("des.events");
      static obs::Counter& packets = reg.counter("des.packets");
      static obs::Counter& blocked = reg.counter("des.blocked_cycles");
      static obs::Counter& sessions = reg.counter("des.sessions_replayed");
      static obs::Histogram& busy = reg.histogram(
          "des.channel_busy_cycles", {100, 1000, 10000, 100000, 1000000, 10000000});
      events.add(events_);
      packets.add(packets_);
      sessions.add(trace.sessions.size());
      std::uint64_t blocked_total = 0;
      for (const SessionTrace& t : trace.sessions) blocked_total += t.blocked_cycles;
      blocked.add(blocked_total);
      for (const ChannelUse& c : trace.channels) busy.observe(c.busy_cycles);
    }
    return trace;
  }

  const core::SystemModel& sys_;
  const core::Schedule& schedule_;
  const noc::FaultSet* faults_ = nullptr;
  std::vector<int> pretested_;
  std::vector<LostSession> lost_;
  std::vector<SessionState> sessions_;
  std::vector<ChannelState> channels_;
  std::vector<Worm> worms_;
  std::vector<int> free_worms_;
  std::vector<bool> endpoint_busy_;
  std::deque<int> pending_;  ///< unlaunched session indices, plan order
  EventQueue<Payload> queue_;
  std::uint64_t now_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t packets_ = 0;
  double active_power_ = 0.0;
};

}  // namespace

SimTrace replay(const core::SystemModel& sys, const core::Schedule& schedule) {
  return Replayer(sys, schedule, nullptr).run();
}

DegradedReplay replay_degraded(const core::SystemModel& sys, const core::Schedule& schedule,
                               const noc::FaultSet& faults) {
  return replay_degraded(sys, schedule, faults, {});
}

DegradedReplay replay_degraded(const core::SystemModel& sys, const core::Schedule& schedule,
                               const noc::FaultSet& faults, std::span<const int> pretested) {
  Replayer replayer(sys, schedule, &faults, pretested);
  DegradedReplay result;
  result.trace = replayer.run();
  result.lost = replayer.take_lost();
  return result;
}

}  // namespace nocsched::des
