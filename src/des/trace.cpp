#include "des/trace.hpp"

#include "common/error.hpp"
#include "power/profile.hpp"

namespace nocsched::des {

double ChannelUse::utilization(std::uint64_t makespan) const {
  if (makespan == 0) return 0.0;
  return static_cast<double>(busy_cycles) / static_cast<double>(makespan);
}

const SessionTrace& SimTrace::session_for(int module_id) const {
  for (const SessionTrace& s : sessions) {
    if (s.module_id == module_id) return s;
  }
  fail("SimTrace: no session for module ", module_id);
}

double observed_peak_power(const SimTrace& trace) {
  power::PowerProfile profile;
  for (const SessionTrace& s : trace.sessions) {
    if (s.observed_end <= s.observed_start) continue;
    profile.add({s.observed_start, s.observed_end}, s.power);
  }
  return profile.peak();
}

}  // namespace nocsched::des
